"""The async serving plane: admission control, the awaitable gateway,
the socket server/client pair, the autoscaler, and the load harness."""

import asyncio

import numpy as np
import pytest

from repro.aserve import (
    AdmissionController,
    AsyncDynamicsServer,
    AsyncGateway,
    AsyncServeClient,
    Autoscaler,
    ClientOverloaded,
    RateLimitedError,
    RemoteServeError,
    TenantPolicy,
    TokenBucket,
    run_async_load,
)
from repro.dynamics.functions import RBDFunction
from repro.model.library import load_robot
from repro.serve import DynamicsService


def _inputs(t, seed=0, nv=7):
    rng = np.random.default_rng(seed)
    model = load_robot("iiwa")
    q0 = model.random_q(rng)
    qd0 = 0.1 * rng.normal(size=nv)
    controls = 0.05 * rng.normal(size=(t, nv))
    return q0, qd0, controls


class _Clock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestTokenBucket:
    def test_starts_full_then_refills(self):
        clock = _Clock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        assert bucket.take(5.0)
        assert not bucket.take(1.0)
        assert bucket.wait_time(1.0) == pytest.approx(0.1)
        clock.t = 0.25
        assert bucket.take(2.0)
        assert bucket.tokens == pytest.approx(0.5)
        clock.t = 100.0
        assert bucket.tokens == pytest.approx(5.0)  # capped at burst

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.0)


class TestTenantPolicy:
    def test_urgent_tracks_priority(self):
        assert TenantPolicy(priority="interactive").urgent
        assert not TenantPolicy(priority="standard").urgent
        assert not TenantPolicy(priority="batch").urgent

    def test_validation(self):
        with pytest.raises(ValueError, match="priority"):
            TenantPolicy(priority="vip")
        with pytest.raises(ValueError, match="max_inflight"):
            TenantPolicy(max_inflight=0)


class TestAdmissionController:
    def test_rate_limit_reports_retry_after(self):
        clock = _Clock()
        ctl = AdmissionController(clock=clock)
        ctl.set_policy("t", TenantPolicy(rate_rps=1.0, burst=2.0))
        ctl.admit("t", cost=2.0)
        with pytest.raises(RateLimitedError) as exc:
            ctl.admit("t", cost=1.0)
        assert exc.value.retry_after_s == pytest.approx(1.0)
        stats = ctl.stats()["t"]
        assert stats["admitted"] == 1
        assert stats["rate_limited"] == 1

    def test_inflight_cap_checked_before_bucket(self):
        clock = _Clock()
        ctl = AdmissionController(clock=clock)
        ctl.set_policy("t", TenantPolicy(rate_rps=1e-6, burst=10.0,
                                         max_inflight=1))
        ctl.admit("t", cost=1.0)
        with pytest.raises(ClientOverloaded):
            ctl.admit("t", cost=1.0)
        # A backpressure refusal must not burn bucket tokens.
        assert ctl.stats()["t"]["tokens"] == pytest.approx(9.0)
        ctl.release("t")
        ctl.admit("t", cost=1.0)
        assert ctl.stats()["t"]["inflight"] == 1

    def test_unknown_tenant_gets_default_policy(self):
        ctl = AdmissionController(
            default_policy=TenantPolicy(priority="batch"))
        assert ctl.admit("anyone").priority == "batch"
        assert ctl.policy_for("anyone").priority == "batch"


class TestGateway:
    def test_submit_and_rollout_roundtrip(self):
        q0, qd0, us = _inputs(6, seed=1)
        with DynamicsService(n_shards=1) as service:
            gw = AsyncGateway(service)

            async def run():
                res = await gw.submit(
                    "iiwa", RBDFunction.FD, q0, qd0, np.zeros(7))
                roll = await gw.submit_rollout("iiwa", q0, qd0, us, 1e-3)
                return res, roll

            res, roll = asyncio.run(run())
            direct = service.submit(
                "iiwa", RBDFunction.FD, q0, qd=qd0, u=np.zeros(7),
            ).result(timeout=30)
            assert np.array_equal(res.value, direct.value)
            assert roll.horizon == 6
            # Admission slots drained back on completion.
            assert all(t["inflight"] == 0
                       for t in gw.admission.stats().values())

    def test_stream_matches_plain(self):
        q0, qd0, us = _inputs(12, seed=2)
        with DynamicsService(n_shards=1) as service:
            gw = AsyncGateway(service)

            async def run():
                plain = await gw.submit_rollout("iiwa", q0, qd0, us, 1e-3)
                stream = await gw.stream_rollout(
                    "iiwa", q0, qd0, us, 1e-3, window=5)
                spans = []
                async for w in stream:
                    spans.append((w.t0, w.t1, w.done))
                return plain, spans, await stream.result()

            plain, spans, result = asyncio.run(run())
        assert spans == [(0, 5, False), (5, 10, False), (10, 12, True)]
        assert result.windows == 3
        assert np.array_equal(result.value.qs, plain.value.qs)
        assert np.array_equal(result.value.qds, plain.value.qds)

    def test_stream_cancel_raises_and_frees(self):
        q0, qd0, us = _inputs(64, seed=3)
        with DynamicsService(n_shards=1) as service:
            gw = AsyncGateway(service)

            async def run():
                stream = await gw.stream_rollout(
                    "iiwa", q0, qd0, us, 1e-3, window=2, tenant="mpc")
                async for w in stream:
                    stream.cancel()
                    break
                with pytest.raises(Exception, match="cancelled after"):
                    await stream.result()
                # Iteration after cancel ends cleanly, and capacity is
                # back: a fresh rollout on the same shard completes.
                roll = await gw.submit_rollout(
                    "iiwa", q0, qd0, us[:4], 1e-3, tenant="mpc")
                return roll

            roll = asyncio.run(run())
            assert roll.horizon == 4
            assert gw.admission.stats()["mpc"]["inflight"] == 0

    def test_rate_limited_tenant_refused(self):
        q0, qd0, us = _inputs(8, seed=4)
        with DynamicsService(n_shards=1) as service:
            gw = AsyncGateway(service)
            gw.set_policy("small", TenantPolicy(rate_rps=1.0, burst=8.0))

            async def run():
                await gw.submit_rollout("iiwa", q0, qd0, us, 1e-3,
                                        tenant="small")
                with pytest.raises(RateLimitedError) as exc:
                    await gw.submit_rollout("iiwa", q0, qd0, us, 1e-3,
                                            tenant="small")
                return exc.value.retry_after_s

            retry_after = asyncio.run(run())
        assert retry_after > 1.0

    def test_policy_defaults_propagate(self, monkeypatch):
        q0, qd0, _ = _inputs(4, seed=5)
        with DynamicsService(n_shards=1) as service:
            gw = AsyncGateway(service)
            gw.set_policy("mpc", TenantPolicy(priority="interactive",
                                              deadline_s=12.5))
            captured = {}
            real = service.submit

            def spy(*args, **kwargs):
                captured.update(kwargs)
                return real(*args, **kwargs)

            monkeypatch.setattr(service, "submit", spy)

            async def run():
                await gw.submit("iiwa", RBDFunction.FD, q0, qd0,
                                np.zeros(7), tenant="mpc")
                first = dict(captured)
                await gw.submit("iiwa", RBDFunction.FD, q0, qd0,
                                np.zeros(7), tenant="mpc",
                                urgent=False, deadline_s=30.0)
                return first, dict(captured)

            first, second = asyncio.run(run())
        # Interactive tenants default onto the urgent bypass with their
        # policy deadline; explicit per-request values override.
        assert first["urgent"] is True
        assert first["deadline_s"] == 12.5
        assert second["urgent"] is False
        assert second["deadline_s"] == 30.0


def _with_server(service, fn, **connect_kw):
    async def run():
        async with AsyncDynamicsServer(service, port=0) as server:
            client = await AsyncServeClient.connect(
                "127.0.0.1", server.port, **connect_kw)
            try:
                return await fn(client, server)
            finally:
                await client.close()

    return asyncio.run(run())


class TestSocketServer:
    def test_ping_submit_and_rollout(self):
        q0, qd0, us = _inputs(6, seed=6)
        with DynamicsService(n_shards=1) as service:
            direct = service.submit(
                "iiwa", RBDFunction.FD, q0, qd=qd0, u=np.zeros(7),
            ).result(timeout=30)

            async def scenario(client, server):
                pong = await client.ping()
                sub = await client.submit("iiwa", "FD", q0, qd0,
                                          np.zeros(7))
                roll = await client.submit_rollout("iiwa", q0, qd0, us,
                                                   dt=1e-3)
                return pong, sub, roll

            pong, sub, roll = _with_server(service, scenario)
        assert pong["ok"]
        assert np.allclose(np.asarray(sub["value"]), direct.value,
                           atol=0.0)
        assert np.asarray(roll["qs"]).shape == (7, 7)
        assert roll["horizon"] == 6

    def test_streaming_over_the_wire(self):
        q0, qd0, us = _inputs(12, seed=7)
        with DynamicsService(n_shards=1) as service:

            async def scenario(client, server):
                stream = await client.stream_rollout(
                    "iiwa", q0, qd0, us, dt=1e-3, window=5)
                windows = []
                async for payload in stream:
                    windows.append(tuple(payload["window"]))
                final = await stream.result()
                return windows, final

            windows, final = _with_server(service, scenario)
            plain = service.submit_rollout(
                "iiwa", q0, qd0, us, dt=1e-3,
            ).result(timeout=30)
        assert windows == [(0, 5), (5, 10), (10, 12)]
        assert final["done"] and final["windows"] == 3
        assert np.allclose(np.asarray(final["qs"]), plain.value.qs,
                           atol=0.0)

    def test_remote_cancel_mid_stream(self):
        q0, qd0, us = _inputs(64, seed=8)
        with DynamicsService(n_shards=1) as service:

            async def scenario(client, server):
                stream = await client.stream_rollout(
                    "iiwa", q0, qd0, us, dt=1e-3, window=2)
                async for payload in stream:
                    await stream.cancel()
                    break
                # Drained to StopAsyncIteration without raising.
                async for payload in stream:
                    pass
                after = await client.submit_rollout("iiwa", q0, qd0,
                                                    us[:4], dt=1e-3)
                return after

            after = _with_server(service, scenario)
        assert after["horizon"] == 4

    def test_hello_policy_rate_limits_connection(self):
        q0, qd0, us = _inputs(8, seed=9)
        with DynamicsService(n_shards=1) as service:

            async def scenario(client, server):
                await client.submit_rollout("iiwa", q0, qd0, us, dt=1e-3)
                with pytest.raises(RemoteServeError) as exc:
                    await client.submit_rollout("iiwa", q0, qd0, us,
                                                dt=1e-3)
                return exc.value

            error = _with_server(service, scenario, tenant="capped",
                                 rate_rps=1.0, burst=8.0)
        assert error.kind == "RateLimitedError"
        assert error.retry_after_s > 1.0

    def test_admin_surface_scales_pool(self):
        with DynamicsService(n_shards=1) as service:

            async def scenario(client, server):
                snap = await client.admin()
                grown = await client.admin("scale_up")
                shrunk = await client.admin("scale_down")
                return snap, grown, shrunk

            snap, grown, shrunk = _with_server(service, scenario)
        assert snap["active_shards"] == 1
        assert len(snap["shards"]) == 1
        assert grown["active_shards"] == 2
        assert shrunk["active_shards"] == 1
        actions = [e["action"] for e in shrunk["scale_events"]]
        assert actions == ["add", "remove"]

    def test_telemetry_over_the_wire(self):
        q0, qd0, _ = _inputs(4, seed=10)
        with DynamicsService(n_shards=1) as service:

            async def scenario(client, server):
                await client.submit("iiwa", "FD", q0, qd0, np.zeros(7))
                return await client.telemetry()

            doc = _with_server(service, scenario)
        assert "pool_active_shards" in doc
        assert "serve_submitted_cost_total" in doc

    def test_http_endpoints_share_the_port(self):
        with DynamicsService(n_shards=1) as service:

            async def fetch(port, path):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer.write(f"GET {path} HTTP/1.1\r\n"
                             f"Host: x\r\n\r\n".encode())
                await writer.drain()
                raw = await reader.read()
                writer.close()
                return raw.decode()

            async def scenario():
                async with AsyncDynamicsServer(service,
                                               port=0) as server:
                    metrics = await fetch(server.port, "/metrics")
                    health = await fetch(server.port, "/healthz")
                    missing = await fetch(server.port, "/nope")
                    return metrics, health, missing

            metrics, health, missing = asyncio.run(scenario())
        assert metrics.startswith("HTTP/1.1 200")
        assert "pool_active_shards" in metrics
        assert health.startswith("HTTP/1.1 200")
        assert '"active_shards": 1' in health
        assert missing.startswith("HTTP/1.1 404")


class TestAutoscaler:
    def test_tick_grows_and_shrinks_deterministically(self, monkeypatch):
        import time as _time

        with DynamicsService(n_shards=1) as service:
            cost = {"v": 0}
            monkeypatch.setattr(service, "submitted_cost",
                                lambda: cost["v"])
            monkeypatch.setattr(service.metrics, "measured_shard_rps",
                                lambda: {0: 100.0})
            scaler = Autoscaler(service, min_shards=1, max_shards=2,
                                cooldown_s=0.2)
            n0 = _time.monotonic() + 10.0
            scaler.tick(now=n0)                      # baseline
            cost["v"] = 200                          # 200 units in 1 s
            assert scaler.tick(now=n0 + 1.0) == "up"
            assert service.pool.n_active == 2
            cost["v"] = 250                          # still hot, but...
            assert scaler.tick(now=n0 + 1.1) is None  # ...cooling down
            assert scaler.tick(now=n0 + 3.0) == "down"  # demand died
            assert service.pool.n_active == 1
            # min_shards floor: idle forever, never shrinks below 1.
            assert scaler.tick(now=n0 + 6.0) is None
            stats = scaler.stats()
        assert stats["scale_ups"] == 1
        assert stats["scale_downs"] == 1
        assert stats["ticks"] == 5

    def test_validation(self):
        with DynamicsService(n_shards=1) as service:
            with pytest.raises(ValueError, match="min_shards"):
                Autoscaler(service, min_shards=3, max_shards=2)
            with pytest.raises(ValueError, match="watermark"):
                Autoscaler(service, high_watermark=0.2,
                           low_watermark=0.5)


class TestLoadHarness:
    def test_small_mixed_load_is_clean(self):
        report = run_async_load(
            n_clients=8, mpc_fraction=0.25, requests_per_client=2,
            plans_per_client=1, horizon=8, window=4, n_shards=1,
            rate_rps=50.0, seed=1,
        )
        assert report["availability"] == 1.0
        assert report["poisson"]["failed"] == 0
        assert report["mpc"]["failed"] == 0
        assert report["mpc"]["first_window_p95_ms"] > 0.0


class TestCLI:
    def test_serve_client_selftest(self, capsys):
        from repro.__main__ import main

        rc = main(["serve-client", "--selftest", "--requests", "2",
                   "--horizon", "8", "--window", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "selftest OK" in out
