"""Tests for the batch scheduler helpers, configuration, and reporting."""

import pytest

from repro.core.config import (
    AcceleratorConfig,
    NumericsConfig,
    PAPER_CONFIG,
    SAPConfig,
)
from repro.core.scheduler import (
    independent_batch,
    rk4_sensitivity_jobs,
    serial_chains,
    staggered_batch,
)
from repro.errors import ConfigurationError
from repro.reporting import Table, format_value, ratio_line


class TestScheduler:
    def test_independent_batch(self):
        jobs = independent_batch(5)
        assert len(jobs) == 5
        assert all(not j.after_jobs for j in jobs)

    def test_serial_chains_structure(self):
        jobs = serial_chains(2, 3)
        assert len(jobs) == 6
        # Chain 0: jobs 0,1,2; chain 1: jobs 3,4,5.
        assert jobs[0].after_jobs == ()
        assert jobs[1].after_jobs == (0,)
        assert jobs[2].after_jobs == (1,)
        assert jobs[3].after_jobs == ()
        assert jobs[4].after_jobs == (3,)

    def test_rk4_is_four_long_chains(self):
        jobs = rk4_sensitivity_jobs(3)
        assert len(jobs) == 12
        chained = sum(1 for j in jobs if j.after_jobs)
        assert chained == 9

    def test_staggered_release_times(self):
        jobs = staggered_batch(4, 10.0)
        assert [j.release_cycle for j in jobs] == [0.0, 10.0, 20.0, 30.0]

    def test_serial_chains_zero_chains(self):
        assert serial_chains(0, 4) == []
        assert rk4_sensitivity_jobs(0) == []

    def test_serial_chains_length_one_is_independent_batch(self):
        jobs = serial_chains(5, 1)
        assert len(jobs) == 5
        assert all(not j.after_jobs for j in jobs)

    def test_serial_chains_single_chain(self):
        jobs = serial_chains(1, 1)
        assert len(jobs) == 1
        assert jobs[0].after_jobs == ()

    def test_serial_chains_dependencies_stay_within_chain(self):
        chain_length = 3
        jobs = serial_chains(4, chain_length)
        for idx, job in enumerate(jobs):
            chain, step = divmod(idx, chain_length)
            if step == 0:
                assert job.after_jobs == ()
            else:
                (dep,) = job.after_jobs
                # The dependency must be the previous step of the SAME chain.
                assert dep == idx - 1
                assert dep // chain_length == chain


class TestConfig:
    def test_with_creates_modified_copy(self):
        new = PAPER_CONFIG.with_(clock_hz=200e6)
        assert new.clock_hz == 200e6
        assert PAPER_CONFIG.clock_hz == 125e6

    def test_heavy_ii_defaults_to_light(self):
        assert AcceleratorConfig().heavy_ii_cycles == (
            AcceleratorConfig().ii_target_cycles
        )
        assert AcceleratorConfig(
            ii_target_heavy_cycles=40
        ).heavy_ii_cycles == 40

    def test_cycles_to_seconds(self):
        config = AcceleratorConfig(clock_hz=100e6)
        assert config.cycles_to_seconds(100) == pytest.approx(1e-6)

    @pytest.mark.parametrize("bad", [
        dict(clock_hz=0.0),
        dict(ii_target_cycles=0),
        dict(fifo_capacity=1),
        dict(sap_replicas=0),
    ])
    def test_invalid_configs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            AcceleratorConfig(**bad)

    def test_numerics_validation(self):
        with pytest.raises(ConfigurationError):
            NumericsConfig(integer_bits=1)
        with pytest.raises(ConfigurationError):
            NumericsConfig(taylor_order=0)

    def test_sap_config_defaults_all_on(self):
        sap = SAPConfig()
        assert sap.share_symmetric_branches
        assert sap.reroot_tree
        assert sap.split_floating_base
        assert sap.branch_induced_sparsity


class TestReporting:
    def test_table_renders_alignment(self):
        table = Table("demo", ["a", "bb"])
        table.add_row(1, 2.5)
        table.add_row("long-cell", 0.001)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert len({len(line) for line in lines[1:3]}) <= 2

    def test_row_arity_checked(self):
        table = Table("demo", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_notes_rendered(self):
        table = Table("demo", ["a"])
        table.add_row(1)
        table.add_note("hello")
        assert "note: hello" in table.render()

    def test_format_value_ranges(self):
        assert format_value(0.0) == "0"
        assert format_value(1234.5) == "1.23e+03"
        assert format_value(0.25) == "0.25"
        assert format_value("x") == "x"

    def test_ratio_line(self):
        line = ratio_line("metric", 2.0, 4.0)
        assert "x0.50" in line
