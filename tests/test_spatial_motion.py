"""Unit tests for spatial cross-product operators."""

import numpy as np

from repro.spatial.motion import crf, crf_bar, crm, cross_force, cross_motion
from repro.spatial.random import random_rotation
from repro.spatial.transforms import spatial_transform


class TestCrm:
    def test_matches_cross_motion(self, rng):
        a, b = rng.normal(size=6), rng.normal(size=6)
        assert np.allclose(crm(a) @ b, cross_motion(a, b))

    def test_antisymmetric_in_arguments(self, rng):
        a, b = rng.normal(size=6), rng.normal(size=6)
        assert np.allclose(cross_motion(a, b), -cross_motion(b, a))

    def test_self_cross_zero(self, rng):
        a = rng.normal(size=6)
        assert np.allclose(cross_motion(a, a), 0)

    def test_jacobi_identity(self, rng):
        a, b, c = (rng.normal(size=6) for _ in range(3))
        total = (
            cross_motion(a, cross_motion(b, c))
            + cross_motion(b, cross_motion(c, a))
            + cross_motion(c, cross_motion(a, b))
        )
        assert np.allclose(total, 0, atol=1e-12)


class TestCrf:
    def test_crf_is_minus_crm_transpose(self, rng):
        a = rng.normal(size=6)
        assert np.allclose(crf(a), -crm(a).T)

    def test_matches_cross_force(self, rng):
        a, f = rng.normal(size=6), rng.normal(size=6)
        assert np.allclose(crf(a) @ f, cross_force(a, f))

    def test_power_identity(self, rng):
        # (v x m) . f == -m . (v x* f): duality of the two cross products.
        v, m, f = (rng.normal(size=6) for _ in range(3))
        assert np.isclose(cross_motion(v, m) @ f, -(m @ cross_force(v, f)))


class TestCrfBar:
    def test_swaps_arguments(self, rng):
        a, f = rng.normal(size=6), rng.normal(size=6)
        assert np.allclose(crf_bar(f) @ a, cross_force(a, f))

    def test_linear_in_f(self, rng):
        f1, f2 = rng.normal(size=6), rng.normal(size=6)
        assert np.allclose(crf_bar(f1 + f2), crf_bar(f1) + crf_bar(f2))


class TestTransformCompatibility:
    def test_cross_commutes_with_transform(self, rng):
        # X (a x b) == (X a) x (X b) for motion vectors.
        x = spatial_transform(random_rotation(rng), rng.normal(size=3))
        a, b = rng.normal(size=6), rng.normal(size=6)
        assert np.allclose(
            x @ cross_motion(a, b), cross_motion(x @ a, x @ b), atol=1e-10
        )

    def test_crm_conjugation(self, rng):
        # X crm(s) X^{-1} == crm(X s): the identity behind joint reversal.
        from repro.spatial.transforms import inverse_transform

        x = spatial_transform(random_rotation(rng), rng.normal(size=3))
        s = rng.normal(size=6)
        assert np.allclose(
            x @ crm(s) @ inverse_transform(x), crm(x @ s), atol=1e-10
        )
