"""The ``repro.rollout`` subsystem: scheme equivalence vs the scalar
integrators, all four engines, contact modes, sensitivities, determinism
and the app-layer consumers."""

import numpy as np
import pytest

from repro.apps.integrators import (
    State,
    batch_rollout,
    euler_sensitivity_step,
    euler_step,
    rk4_sensitivity_step,
    rk4_step,
    rollout,
)
from repro.apps.mpc import PredictiveSamplingMPC
from repro.dynamics.contact import ContactPoint, constrained_forward_dynamics
from repro.model.library import double_pendulum, hyq, iiwa
from repro.rollout import SCHEMES, RolloutEngine, rollout_plan_for

DT = 2e-3


def _batch(model, n, t, seed=0, scale=0.2):
    rng = np.random.default_rng(seed)
    q0 = np.stack([model.random_q(rng) for _ in range(n)])
    qd0 = scale * rng.normal(size=(n, model.nv))
    controls = scale * rng.normal(size=(n, t, model.nv))
    return q0, qd0, controls


def _feet(model):
    return [
        ContactPoint(model.link_index(name), np.array([0.0, 0.0, -0.35]))
        for name in ("lf_kfe", "rh_kfe")
    ]


class TestSchemes:
    @pytest.mark.parametrize("scheme,step", [
        ("semi_implicit", euler_step), ("rk4", rk4_step),
    ])
    def test_matches_scalar_stepping(self, scheme, step):
        model = iiwa()
        n, t = 5, 10
        q0, qd0, us = _batch(model, n, t, seed=1)
        res = RolloutEngine(scheme, engine="loop").rollout(
            model, q0, qd0, us, dt=DT
        )
        assert res.qs.shape == (n, t + 1, model.nv)
        for k in range(n):
            state = State(q0[k].copy(), qd0[k].copy())
            for step_idx in range(t):
                state = step(model, state, us[k, step_idx], DT)
                assert np.allclose(res.qs[k, step_idx + 1], state.q,
                                   atol=1e-12)
                assert np.allclose(res.qds[k, step_idx + 1], state.qd,
                                   atol=1e-12)

    def test_explicit_euler_scheme(self):
        model = double_pendulum()
        q0, qd0, us = _batch(model, 3, 6, seed=2)
        res = RolloutEngine("euler", engine="loop").rollout(
            model, q0, qd0, us, dt=DT
        )
        from repro.dynamics.functions import forward_dynamics

        q, qd = q0[0].copy(), qd0[0].copy()
        for t in range(6):
            qdd = forward_dynamics(model, q, qd, us[0, t])
            q = model.integrate(q, DT * qd)
            qd = qd + DT * qdd
            assert np.allclose(res.qs[0, t + 1], q, atol=1e-12)
            assert np.allclose(res.qds[0, t + 1], qd, atol=1e-12)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            RolloutEngine("leapfrog")
        assert set(SCHEMES) == {"euler", "semi_implicit", "rk4"}


class TestEngines:
    @pytest.mark.parametrize("engine",
                             ["loop", "vectorized", "compiled", "process"])
    def test_any_registered_engine(self, engine):
        """(n, T) slabs with contact run on every registered engine."""
        model = hyq()
        q0, qd0, us = _batch(model, 4, 5, seed=3)
        res = RolloutEngine("semi_implicit", engine=engine).rollout(
            model, q0, qd0, us, dt=1e-3, contacts=_feet(model)
        )
        ref = RolloutEngine("semi_implicit", engine="loop").rollout(
            model, q0, qd0, us, dt=1e-3, contacts=_feet(model)
        )
        assert res.engine == engine
        assert np.allclose(res.qs, ref.qs, atol=1e-8)
        assert np.allclose(res.forces, ref.forces, atol=1e-6)

    @pytest.mark.parametrize("engine", ["loop", "vectorized", "compiled"])
    def test_deterministic_bitwise(self, engine):
        """Same inputs => bitwise-equal trajectories, run after run (the
        preallocated workspaces leak no state between calls)."""
        model = iiwa()
        q0, qd0, us = _batch(model, 6, 8, seed=4)
        eng = RolloutEngine("rk4", engine=engine)
        first = eng.rollout(model, q0, qd0, us, dt=DT)
        second = eng.rollout(model, q0, qd0, us, dt=DT)
        assert np.array_equal(first.qs, second.qs)
        assert np.array_equal(first.qds, second.qds)

    def test_same_seed_same_trajectories_across_engines(self):
        """One seeded input slab produces matching trajectories on every
        engine (loop is the bit-reference; array engines agree to the
        engine-equivalence tolerance propagated over the horizon)."""
        model = iiwa()
        q0, qd0, us = _batch(model, 4, 8, seed=5)
        results = {
            engine: RolloutEngine("rk4", engine=engine).rollout(
                model, q0, qd0, us, dt=DT
            )
            for engine in ("loop", "vectorized", "compiled", "process")
        }
        for engine, res in results.items():
            assert np.allclose(res.qs, results["loop"].qs, atol=1e-9), engine


class TestContacts:
    def test_contact_rollout_matches_per_step_reference(self):
        model = hyq()
        feet = _feet(model)
        q0, qd0, us = _batch(model, 3, 5, seed=6)
        res = RolloutEngine("semi_implicit", engine="loop").rollout(
            model, q0, qd0, us, dt=1e-3, contacts=feet
        )
        for k in range(3):
            q, qd = q0[k].copy(), qd0[k].copy()
            for t in range(5):
                ref = constrained_forward_dynamics(model, q, qd, us[k, t],
                                                   feet)
                qd = qd + 1e-3 * ref.qdd
                q = model.integrate(q, 1e-3 * qd)
                assert np.allclose(res.forces[k, t], ref.contact_forces,
                                   atol=1e-9)
                assert np.allclose(res.qs[k, t + 1], q, atol=1e-10)

    def test_per_step_mask_schedule(self):
        """A (T, c) gait schedule switches contact modes step by step."""
        model = hyq()
        feet = _feet(model)
        q0, qd0, us = _batch(model, 2, 4, seed=7)
        schedule = np.array([
            [True, True], [True, False], [False, True], [False, False],
        ])
        res = RolloutEngine("semi_implicit").rollout(
            model, q0, qd0, us, dt=1e-3, contacts=feet,
            contact_mask=schedule,
        )
        assert res.active.shape == (2, 4, 2)
        assert np.array_equal(res.active[0], schedule)
        # Fully inactive steps carry exactly zero force.
        assert np.all(res.forces[:, 3][:, 0:3] == 0.0)
        assert np.all(res.forces[:, 3][:, 3:6] == 0.0)

    def test_callable_mask(self):
        model = hyq()
        feet = _feet(model)
        q0, qd0, us = _batch(model, 2, 3, seed=8)
        seen = []

        def mask(t, q, qd):
            seen.append(t)
            return np.ones((2, 2), dtype=bool)

        RolloutEngine("semi_implicit").rollout(
            model, q0, qd0, us, dt=1e-3, contacts=feet, contact_mask=mask
        )
        assert seen == [0, 1, 2]

    def test_ground_mode_masks_by_height(self):
        model = hyq()
        feet = _feet(model)
        q0, qd0, us = _batch(model, 2, 2, seed=9)
        res = RolloutEngine("semi_implicit").rollout(
            model, q0, qd0, us, dt=1e-3, contacts=feet,
            contact_mask="ground", ground_height=1e6,
        )
        assert np.all(res.active)       # everything is below 1e6
        res = RolloutEngine("semi_implicit").rollout(
            model, q0, qd0, us, dt=1e-3, contacts=feet,
            contact_mask="ground", ground_height=-1e6,
        )
        assert not np.any(res.active)

    def test_per_task_static_mask(self):
        """(n, c) masks pin each task's contact mode for the whole
        rollout (with n != T so the shape is unambiguous)."""
        model = hyq()
        feet = _feet(model)
        q0, qd0, us = _batch(model, 3, 4, seed=21)
        per_task = np.array([[True, True], [True, False], [False, False]])
        res = RolloutEngine("semi_implicit").rollout(
            model, q0, qd0, us, dt=1e-3, contacts=feet,
            contact_mask=per_task,
        )
        for t in range(4):
            assert np.array_equal(res.active[:, t], per_task)
        assert np.all(res.forces[2] == 0.0)

    def test_bad_mask_shape_rejected(self):
        model = hyq()
        q0, qd0, us = _batch(model, 2, 3)
        with pytest.raises(ValueError, match="contact_mask shape"):
            RolloutEngine("semi_implicit").rollout(
                model, q0, qd0, us, dt=1e-3, contacts=_feet(model),
                contact_mask=np.ones((5, 2), dtype=bool),
            )

    def test_contact_count_can_shrink_between_calls(self):
        """A narrower contact set after a wider one reuses the grown
        workspace without shape errors."""
        model = hyq()
        feet = _feet(model)
        q0, qd0, us = _batch(model, 2, 3, seed=22)
        engine = RolloutEngine("semi_implicit")
        engine.rollout(model, q0, qd0, us, dt=1e-3, contacts=feet)
        res = engine.rollout(model, q0, qd0, us, dt=1e-3,
                             contacts=feet[:1])
        assert res.forces.shape == (2, 3, 3)
        assert res.active.shape == (2, 3, 1)

    def test_unknown_mode_rejected(self):
        model = hyq()
        q0, qd0, us = _batch(model, 1, 1)
        with pytest.raises(ValueError, match="unknown contact mode"):
            RolloutEngine("semi_implicit").rollout(
                model, q0, qd0, us, dt=1e-3, contacts=_feet(model),
                contact_mask="water",
            )


class TestSensitivities:
    def test_semi_implicit_matches_scalar_sensitivity_step(self):
        model = double_pendulum()
        q0, qd0, us = _batch(model, 3, 4, seed=10)
        res = RolloutEngine("semi_implicit", engine="loop").rollout(
            model, q0, qd0, us, dt=DT, sensitivities=True
        )
        for k in range(3):
            state = State(q0[k].copy(), qd0[k].copy())
            for t in range(4):
                step = euler_sensitivity_step(model, state, us[k, t], DT)
                assert np.allclose(res.a_matrices[k, t], step.a_matrix,
                                   atol=1e-10)
                assert np.allclose(res.b_matrices[k, t], step.b_matrix,
                                   atol=1e-10)
                state = step.state
                assert np.allclose(res.qs[k, t + 1], state.q, atol=1e-10)

    def test_rk4_matches_scalar_sensitivity_step(self):
        model = double_pendulum()
        q0, qd0, us = _batch(model, 2, 3, seed=11)
        res = RolloutEngine("rk4", engine="loop").rollout(
            model, q0, qd0, us, dt=DT, sensitivities=True
        )
        for k in range(2):
            state = State(q0[k].copy(), qd0[k].copy())
            for t in range(3):
                step = rk4_sensitivity_step(model, state, us[k, t], DT)
                assert np.allclose(res.a_matrices[k, t], step.a_matrix,
                                   atol=1e-9)
                assert np.allclose(res.b_matrices[k, t], step.b_matrix,
                                   atol=1e-9)
                state = step.state

    def test_sensitivities_with_contacts_rejected(self):
        model = hyq()
        q0, qd0, us = _batch(model, 1, 2)
        with pytest.raises(ValueError, match="sensitivit"):
            RolloutEngine("semi_implicit").rollout(
                model, q0, qd0, us, dt=1e-3, contacts=_feet(model),
                sensitivities=True,
            )


class TestApi:
    def test_policy_closed_loop(self):
        """PD policy rollouts: controls computed from the evolving state."""
        model = double_pendulum()
        n = 4
        rng = np.random.default_rng(12)
        q0 = 0.3 * rng.normal(size=(n, model.nv))
        qd0 = np.zeros((n, model.nv))
        goal = np.array([0.5, -0.2])

        from repro.dynamics.rnea import gravity_torques

        def policy(t, q, qd):
            gravity = np.stack([
                gravity_torques(model, q[i]) for i in range(q.shape[0])
            ])
            return gravity + 60.0 * (goal - q) - 8.0 * qd

        res = RolloutEngine("semi_implicit").rollout(
            model, q0, qd0, policy=policy, horizon=400, dt=5e-3
        )
        assert res.controls.shape == (n, 400, model.nv)
        assert np.allclose(res.qs[:, -1], goal, atol=0.05)

    def test_shared_controls_broadcast(self):
        model = iiwa()
        q0, qd0, us = _batch(model, 3, 4, seed=13)
        shared = us[0]
        res = RolloutEngine("rk4").rollout(model, q0, qd0, shared, dt=DT)
        per_task = RolloutEngine("rk4").rollout(
            model, q0, qd0, np.broadcast_to(shared, (3, 4, model.nv)),
            dt=DT,
        )
        assert np.array_equal(res.qs, per_task.qs)

    def test_single_task_vectors(self):
        model = iiwa()
        rng = np.random.default_rng(14)
        q0 = model.random_q(rng)
        res = RolloutEngine("rk4").rollout(
            model, q0, np.zeros(model.nv),
            np.zeros((3, model.nv)), dt=DT,
        )
        assert res.qs.shape == (1, 4, model.nv)
        task = res.task(0)
        assert task.qs.shape == (4, model.nv)

    def test_input_validation(self):
        model = iiwa()
        q0, qd0, us = _batch(model, 2, 3)
        engine = RolloutEngine("rk4")
        with pytest.raises(ValueError, match="controls or a policy"):
            engine.rollout(model, q0, qd0, dt=DT)
        with pytest.raises(ValueError, match="horizon"):
            engine.rollout(model, q0, qd0, policy=lambda t, q, qd: q, dt=DT)
        with pytest.raises(ValueError, match="does not match"):
            engine.rollout(model, q0, qd0, us, dt=DT, horizon=7)
        with pytest.raises(ValueError, match="qd0"):
            engine.rollout(model, q0, qd0[:1], us, dt=DT)

    def test_plan_memoized_per_combination(self):
        model = iiwa()
        a = rollout_plan_for(model, "rk4", "compiled")
        b = rollout_plan_for(model, "rk4", "compiled")
        c = rollout_plan_for(model, "euler", "compiled")
        assert a is b
        assert a is not c
        assert a.describe()["fd_per_step"] == 4

    def test_workspace_reused_across_calls(self):
        model = iiwa()
        engine = RolloutEngine("semi_implicit")
        q0, qd0, us = _batch(model, 4, 6, seed=15)
        engine.rollout(model, q0, qd0, us, dt=DT)
        plan = engine.plan(model)
        ws = plan._tls.ws
        nbytes = ws.nbytes()
        engine.rollout(model, q0, qd0, us, dt=DT)
        assert plan._tls.ws is ws
        assert ws.nbytes() == nbytes


class TestAppConsumers:
    def test_rollout_helper_matches_scalar_loop(self):
        """apps.integrators.rollout (batched path) == explicit stepping."""
        model = double_pendulum()
        rng = np.random.default_rng(16)
        initial = State(rng.normal(size=2), rng.normal(size=2))
        controls = [0.1 * rng.normal(size=2) for _ in range(8)]
        states = rollout(model, initial, controls, 1e-2, rk4_step)
        state = initial
        for t, tau in enumerate(controls):
            state = rk4_step(model, state, tau, 1e-2)
            assert np.allclose(states[t + 1].q, state.q, atol=1e-10)

    def test_rollout_helper_accepts_ndarray_controls(self):
        model = double_pendulum()
        rng = np.random.default_rng(19)
        initial = State(rng.normal(size=2), rng.normal(size=2))
        controls = 0.1 * rng.normal(size=(5, 2))
        states = rollout(model, initial, controls, 1e-2, euler_step)
        assert len(states) == 6
        assert rollout(model, initial, np.zeros((0, 2)), 1e-2) == [initial]

    def test_batch_rollout_wrapper(self):
        model = iiwa()
        q0, qd0, us = _batch(model, 3, 4, seed=17)
        res = batch_rollout(model, q0, qd0, us, DT, scheme="rk4")
        direct = RolloutEngine("rk4").rollout(model, q0, qd0, us, dt=DT)
        assert np.array_equal(res.qs, direct.qs)

    def test_predictive_sampling_mpc_improves_cost(self):
        model = double_pendulum()
        goal = np.array([0.6, -0.3])

        def cost(qs, qds, us):
            err = qs[:, -1] - goal
            return (
                np.sum(err * err, axis=1)
                + 0.1 * np.sum(qds[:, -1] ** 2, axis=1)
                + 1e-4 * np.sum(us * us, axis=(1, 2))
            )

        mpc = PredictiveSamplingMPC(
            model, cost, horizon=20, dt=1e-2, n_samples=24, noise=0.5,
            seed=3,
        )
        q = np.zeros(2)
        qd = np.zeros(2)
        first_cost = None
        for _ in range(25):
            u0, info = mpc.plan(q, qd)
            if first_cost is None:
                first_cost = info["cost"]
            state = euler_step(model, State(q, qd), u0, 1e-2)
            q, qd = state.q, state.qd
        assert info["cost"] < first_cost
        assert info["rollout"].batch == 24
