"""Functional equivalence of the accelerator across the whole robot
library (the paper's generality claim: "a general rigid body dynamics
accelerator design framework that can be applied to a wide variety of
robots")."""

import numpy as np
import pytest

from repro.core import DaduRBD, PAPER_CONFIG, TaskRequest
from repro.core.config import NumericsConfig
from repro.dynamics import (
    forward_dynamics,
    inverse_dynamics,
    mass_matrix_inverse,
    rnea,
)
from repro.dynamics.functions import RBDFunction
from repro.model.library import ROBOT_REGISTRY, load_robot

EXACT = PAPER_CONFIG.with_(
    numerics=NumericsConfig(fixed_point=False, taylor_order=19)
)


@pytest.fixture(scope="module", params=sorted(ROBOT_REGISTRY))
def build(request):
    robot = load_robot(request.param)
    return robot, DaduRBD(robot, EXACT)


class TestWholeLibrary:
    def test_id_and_fd_roundtrip(self, build, rng):
        robot, acc = build
        q, qd = robot.random_state(rng)
        qdd = rng.normal(size=robot.nv)
        tau = acc.compute(TaskRequest(RBDFunction.ID, q, qd, qdd))
        assert np.allclose(tau, inverse_dynamics(robot, q, qd, qdd), atol=1e-9)
        back = acc.compute(TaskRequest(RBDFunction.FD, q, qd, tau))
        assert np.allclose(back, qdd, atol=1e-7)

    def test_minv(self, build, rng):
        robot, acc = build
        q = robot.random_q(rng)
        got = acc.compute(TaskRequest(RBDFunction.MINV, q))
        assert np.allclose(got, mass_matrix_inverse(robot, q), atol=1e-8)

    def test_derivatives_with_external_forces(self, build, rng):
        robot, acc = build
        q, qd = robot.random_state(rng)
        qdd = rng.normal(size=robot.nv)
        f_ext = {robot.nb - 1: rng.normal(size=6)}
        got = acc.compute(
            TaskRequest(RBDFunction.DID, q, qd, qdd, f_ext=f_ext)
        )
        # Column check against finite differences with the same f_ext.
        eps = 1e-6
        k = rng.integers(0, robot.nv)
        e = np.zeros(robot.nv)
        e[k] = eps
        col = (
            rnea(robot, robot.integrate(q, e), qd, qdd, f_ext)
            - rnea(robot, robot.integrate(q, -e), qd, qdd, f_ext)
        ) / (2 * eps)
        assert np.allclose(got.dtau_dq[:, k], col, atol=5e-5)

    def test_all_timing_profiles_finite(self, build):
        _, acc = build
        for f in RBDFunction:
            assert np.isfinite(acc.latency_cycles(f))
            assert acc.initiation_interval(f) > 0
            assert acc.power_w(f) > 0

    def test_resources_fit_every_robot(self, build):
        _, acc = build
        assert acc.resources().fits()

    def test_forward_dynamics_gravity_sanity(self, build, rng):
        """FD under zero torque accelerates along gravity (potential
        energy decreasing at second order) for a robot at rest."""
        robot, acc = build
        q = robot.random_q(rng)
        qdd = acc.compute(
            TaskRequest(RBDFunction.FD, q, np.zeros(robot.nv),
                        np.zeros(robot.nv))
        )
        assert np.allclose(
            qdd, forward_dynamics(robot, q, np.zeros(robot.nv),
                                  np.zeros(robot.nv)),
            atol=1e-8,
        )
