"""Rollout-as-a-service: submit_rollout, horizon-aware batching, cost-
weighted placement, and the measured-throughput weight feedback."""

import numpy as np
import pytest

from repro.dynamics.contact import ContactPoint
from repro.model.library import hyq, iiwa, load_robot
from repro.rollout import RolloutEngine
from repro.serve import (
    BatchPolicy,
    DynamicBatcher,
    DynamicsService,
    RolloutRequest,
    RolloutServeResult,
    ShardConfig,
    ShardPool,
)


def _rollout_inputs(model, t, seed=0):
    rng = np.random.default_rng(seed)
    q0 = model.random_q(rng)
    qd0 = 0.2 * rng.normal(size=model.nv)
    controls = 0.1 * rng.normal(size=(t, model.nv))
    return q0, qd0, controls


def _feet(model):
    return [
        ContactPoint(model.link_index(name), np.array([0.0, 0.0, -0.35]))
        for name in ("lf_kfe", "rh_kfe")
    ]


class TestSubmitRollout:
    def test_roundtrip_matches_direct_rollout(self):
        model = load_robot("iiwa")
        q0, qd0, us = _rollout_inputs(model, 6, seed=1)
        with DynamicsService(n_shards=1) as service:
            result = service.submit_rollout(
                "iiwa", q0, qd0, us, dt=1e-3, scheme="rk4"
            ).result(timeout=30)
        assert isinstance(result, RolloutServeResult)
        assert result.scheme == "rk4"
        assert result.horizon == 6
        direct = RolloutEngine("rk4", engine=result.engine).rollout(
            model, q0, qd0, us, dt=1e-3
        )
        assert np.allclose(result.value.qs, direct.qs[0], atol=1e-12)

    def test_contact_rollout_through_service(self):
        model = load_robot("hyq")
        feet = _feet(model)
        q0, qd0, us = _rollout_inputs(model, 4, seed=2)
        mask = np.ones((4, 2), dtype=bool)
        mask[2:] = False
        with DynamicsService(n_shards=1) as service:
            result = service.submit_rollout(
                "hyq", q0, qd0, us, dt=1e-3, contacts=feet,
                contact_mask=mask,
            ).result(timeout=30)
        assert result.value.forces.shape == (4, 6)
        assert np.all(result.value.forces[2:] == 0.0)
        direct = RolloutEngine("semi_implicit",
                               engine=result.engine).rollout(
            model, q0, qd0, us, dt=1e-3, contacts=feet, contact_mask=mask
        )
        assert np.allclose(result.value.qs, direct.qs[0], atol=1e-12)

    def test_same_key_rollouts_coalesce(self):
        model = load_robot("iiwa")
        policy = BatchPolicy(max_batch=4, max_wait_s=0.5)
        with DynamicsService(policy=policy, n_shards=1) as service:
            futures = [
                service.submit_rollout(
                    "iiwa", *_rollout_inputs(model, 5, seed=k), dt=1e-3
                )
                for k in range(4)
            ]
            results = [f.result(timeout=30) for f in futures]
        assert all(r.batch_size == 4 for r in results)

    def test_different_horizons_do_not_mix(self):
        model = load_robot("iiwa")
        policy = BatchPolicy(max_batch=8, max_wait_s=1e-3)
        with DynamicsService(policy=policy, n_shards=1) as service:
            f_short = service.submit_rollout(
                "iiwa", *_rollout_inputs(model, 3, seed=1), dt=1e-3
            )
            f_long = service.submit_rollout(
                "iiwa", *_rollout_inputs(model, 9, seed=2), dt=1e-3
            )
            short = f_short.result(timeout=30)
            long = f_long.result(timeout=30)
        assert short.batch_size == 1
        assert long.batch_size == 1
        assert short.horizon == 3 and long.horizon == 9

    def test_horizon_aware_flush_budget(self):
        """max_batch_cost flushes a rollout group by step volume: with a
        budget of 4 * T the group flushes at 4 rollouts even though
        max_batch would allow 64."""
        model = load_robot("iiwa")
        t = 8
        policy = BatchPolicy(max_batch=64, max_wait_s=0.5,
                             max_batch_cost=4 * t)
        with DynamicsService(policy=policy, n_shards=1) as service:
            futures = [
                service.submit_rollout(
                    "iiwa", *_rollout_inputs(model, t, seed=k), dt=1e-3
                )
                for k in range(4)
            ]
            results = [f.result(timeout=30) for f in futures]
        assert all(r.batch_size == 4 for r in results)

    def test_sensitivities_returned(self):
        model = load_robot("iiwa")
        q0, qd0, us = _rollout_inputs(model, 3, seed=4)
        with DynamicsService(n_shards=1) as service:
            result = service.submit_rollout(
                "iiwa", q0, qd0, us, dt=1e-3, sensitivities=True
            ).result(timeout=30)
        nv = model.nv
        assert result.value.a_matrices.shape == (3, 2 * nv, 2 * nv)
        assert result.value.b_matrices.shape == (3, 2 * nv, nv)

    def test_urgent_bypasses_batcher(self):
        model = load_robot("iiwa")
        policy = BatchPolicy(max_batch=16, max_wait_s=5.0)
        with DynamicsService(policy=policy, n_shards=1) as service:
            result = service.submit_rollout(
                "iiwa", *_rollout_inputs(model, 4), dt=1e-3, urgent=True
            ).result(timeout=30)
        assert result.batch_size == 1

    def test_rollout_metrics(self):
        model = load_robot("iiwa")
        with DynamicsService(n_shards=1) as service:
            futures = [
                service.submit_rollout(
                    "iiwa", *_rollout_inputs(model, 6, seed=k), dt=1e-3
                )
                for k in range(3)
            ]
            [f.result(timeout=30) for f in futures]
            stats = service.stats()
        assert stats["rollouts_completed"] == 3
        assert stats["rollout_steps_total"] == 18
        assert stats["rollout_p50_ms"] > 0.0
        assert service.metrics.rollout_horizons() == {6: 3}

    def test_validation(self):
        model = load_robot("iiwa")
        q0, qd0, us = _rollout_inputs(model, 4)
        with DynamicsService(n_shards=1) as service:
            with pytest.raises(ValueError, match="unknown rollout scheme"):
                service.submit_rollout("iiwa", q0, qd0, us, dt=1e-3,
                                       scheme="verlet")
            with pytest.raises(ValueError, match="dt"):
                service.submit_rollout("iiwa", q0, qd0, us, dt=0.0)
            with pytest.raises(ValueError, match="q0"):
                service.submit_rollout("iiwa", q0[:-1], qd0, us, dt=1e-3)
            with pytest.raises(ValueError, match="controls"):
                service.submit_rollout("iiwa", q0, qd0, us[:, :-1], dt=1e-3)
            with pytest.raises(ValueError, match="contact_mask"):
                service.submit_rollout(
                    "iiwa", q0, qd0, us, dt=1e-3,
                    contact_mask=np.ones((4, 1), dtype=bool),
                )

    def test_request_key_and_cost(self):
        model = iiwa()
        q0, qd0, us = _rollout_inputs(model, 7)
        request = RolloutRequest(
            robot="iiwa", scheme="rk4", q0=q0, qd0=qd0, controls=us,
            dt=1e-3,
        )
        assert request.cost == 7
        assert request.horizon == 7
        assert request.key[0] == "rollout"
        hash(request.key)


class TestCostAwareBatcher:
    def test_cost_budget_flushes(self):
        model = iiwa()
        policy = BatchPolicy(max_batch=64, max_wait_s=10.0,
                             max_batch_cost=20)
        batcher = DynamicBatcher(policy)
        q0, qd0, us = _rollout_inputs(model, 8)
        first = RolloutRequest(robot="iiwa", scheme="rk4", q0=q0, qd0=qd0,
                               controls=us, dt=1e-3)
        second = RolloutRequest(robot="iiwa", scheme="rk4", q0=q0, qd0=qd0,
                                controls=us, dt=1e-3)
        third = RolloutRequest(robot="iiwa", scheme="rk4", q0=q0, qd0=qd0,
                               controls=us, dt=1e-3)
        assert batcher.add(first, 0.0) is None       # cost 8
        assert batcher.add(second, 0.0) is None      # cost 16
        batch = batcher.add(third, 0.0)              # cost 24 >= 20
        assert batch == [first, second, third]
        assert len(batcher) == 0

    def test_plain_requests_unaffected_by_default_budget(self):
        policy = BatchPolicy(max_batch=4)
        batcher = DynamicBatcher(policy)
        from repro.dynamics.functions import RBDFunction
        from repro.serve.request import ServeRequest

        for k in range(3):
            request = ServeRequest(robot="iiwa", function=RBDFunction.FD,
                                   q=np.zeros(7))
            assert request.cost == 1
            assert batcher.add(request, 0.0) is None
        request = ServeRequest(robot="iiwa", function=RBDFunction.FD,
                               q=np.zeros(7))
        assert len(batcher.add(request, 0.0)) == 4   # count flush


class TestMeasuredWeights:
    def test_recalibrate_replaces_priors(self):
        pool = ShardPool(2, "least_loaded")
        pool.shards[0].weight = pool.shards[0].prior_weight = 12.0
        pool.shards[1].weight = pool.shards[1].prior_weight = 1.0
        # Measurements say shard 1 is actually 3x faster.
        pool.recalibrate_weights({0: 100.0, 1: 300.0})
        w0, w1 = pool.shards[0].weight, pool.shards[1].weight
        assert pool.shards[0].weight_measured
        assert w1 / w0 == pytest.approx(3.0)
        # Placement now prefers the measured-faster shard under load.
        pool.shards[0].begin(2)
        pool.shards[1].begin(2)
        assert pool.select() is pool.shards[1]

    def test_unmeasured_shards_keep_prior(self):
        pool = ShardPool(2, "least_loaded")
        pool.shards[0].weight = pool.shards[0].prior_weight = 4.0
        pool.shards[1].weight = pool.shards[1].prior_weight = 2.0
        pool.recalibrate_weights({0: 400.0})
        assert pool.shards[0].weight == pytest.approx(4.0)
        assert not pool.shards[1].weight_measured
        assert pool.shards[1].weight == pytest.approx(2.0)

    def test_service_feeds_measurements_back(self):
        model = load_robot("iiwa")
        rng = np.random.default_rng(0)
        shard_configs = [ShardConfig(engine="compiled"),
                         ShardConfig(engine="vectorized")]
        with DynamicsService(shard_configs=shard_configs,
                             shard_policy="least_loaded") as service:
            from repro.dynamics.functions import RBDFunction

            futures = [
                service.submit("iiwa", RBDFunction.FD, model.random_q(rng),
                               np.zeros(model.nv), np.zeros(model.nv),
                               urgent=True)
                for _ in range(8)
            ]
            [f.result(timeout=30) for f in futures]
            stats = service.stats()
        measured = stats["measured_shard_rps"]
        assert measured and all(rps > 0 for rps in measured.values())
        assert any(s["weight_measured"] for s in stats["shards"])

    def test_cost_weighted_backlog(self):
        pool = ShardPool(2, "least_loaded")
        pool.shards[0].begin(1, cost=64)     # one 64-step rollout
        pool.shards[1].begin(1, cost=1)      # one plain request
        # Same request count, very different drain time.
        assert pool.select() is pool.shards[1]
        pool.shards[0].finish(0.0, 1, cost=64)
        assert pool.shards[0].inflight_cost == 0.0
