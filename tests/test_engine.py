"""Equivalence suite for the batch execution engines.

The vectorized engine must be numerically interchangeable with the loop
reference engine — same Table-I function, same robot, same batch — to
1e-10, including the batch-size extremes the serve runtime produces
(singleton flushes and full 256-task accelerator loads) and the
external-force path.
"""

import numpy as np
import pytest

from repro.dynamics import (
    BatchStates,
    batch_evaluate,
    evaluate,
)
from repro.dynamics.engine import (
    CompiledEngine,
    Engine,
    LoopEngine,
    VectorizedEngine,
    available_engines,
    default_engine_name,
    get_engine,
    normalize_f_ext,
    set_default_engine,
)
from repro.dynamics.functions import RBDFunction
from repro.model.library import ROBOT_REGISTRY, load_robot

TOL = dict(rtol=1e-10, atol=1e-10)
ROBOTS = sorted(ROBOT_REGISTRY)
FUNCTIONS = list(RBDFunction)


def _batch_inputs(model, function, n, seed=0):
    """(states, u, minv) operands for one batched call of ``function``."""
    rng = np.random.default_rng(seed)
    states = BatchStates.random(model, n, seed=seed)
    u = rng.normal(size=(n, model.nv))
    minv = None
    if function is RBDFunction.DIFD:
        minv = np.stack([
            evaluate(model, RBDFunction.MINV, states.q[k])
            for k in range(n)
        ])
    return states, u, minv


def _compare(function, got, want):
    """Assert two batch_evaluate result lists agree to 1e-10."""
    assert len(got) == len(want)
    for a, b in zip(got, want):
        if hasattr(a, "dqdd_dq"):
            np.testing.assert_allclose(a.qdd, b.qdd, **TOL)
            np.testing.assert_allclose(a.dqdd_dq, b.dqdd_dq, **TOL)
            np.testing.assert_allclose(a.dqdd_dqd, b.dqdd_dqd, **TOL)
            np.testing.assert_allclose(a.dqdd_dtau, b.dqdd_dtau, **TOL)
        elif hasattr(a, "dtau_dq"):
            np.testing.assert_allclose(a.dtau_dq, b.dtau_dq, **TOL)
            np.testing.assert_allclose(a.dtau_dqd, b.dtau_dqd, **TOL)
        else:
            np.testing.assert_allclose(a, b, **TOL)


class TestEngineEquivalence:
    """vectorized == loop on every robot x function the library knows."""

    @pytest.mark.parametrize("function", FUNCTIONS, ids=lambda f: f.value)
    @pytest.mark.parametrize("robot", ROBOTS)
    def test_every_robot_and_function(self, robot, function):
        model = load_robot(robot)
        states, u, minv = _batch_inputs(model, function, n=4, seed=3)
        loop = batch_evaluate(model, function, states, u, minv=minv,
                              engine="loop")
        vec = batch_evaluate(model, function, states, u, minv=minv,
                             engine="vectorized")
        _compare(function, vec, loop)

    @pytest.mark.parametrize("function", FUNCTIONS, ids=lambda f: f.value)
    @pytest.mark.parametrize("n", [1, 256])
    def test_batch_size_extremes(self, function, n):
        """Singleton flushes and full accelerator loads agree (iiwa)."""
        model = load_robot("iiwa")
        states, u, minv = _batch_inputs(model, function, n=n, seed=5)
        loop = batch_evaluate(model, function, states, u, minv=minv,
                              engine="loop")
        vec = batch_evaluate(model, function, states, u, minv=minv,
                             engine="vectorized")
        _compare(function, vec, loop)

    @pytest.mark.parametrize(
        "function",
        [RBDFunction.ID, RBDFunction.FD, RBDFunction.DID, RBDFunction.DFD],
        ids=lambda f: f.value,
    )
    @pytest.mark.parametrize("robot", ["iiwa", "hyq"])
    def test_external_force_path(self, robot, function):
        """Per-task (n, 6) and shared (6,) external forces agree."""
        model = load_robot(robot)
        states, u, _ = _batch_inputs(model, function, n=6, seed=7)
        rng = np.random.default_rng(8)
        f_ext = {
            0: rng.normal(size=(6, 6)),          # per-task stack
            model.nb - 1: rng.normal(size=6),    # shared by every task
        }
        loop = batch_evaluate(model, function, states, u, f_ext=f_ext,
                              engine="loop")
        vec = batch_evaluate(model, function, states, u, f_ext=f_ext,
                             engine="vectorized")
        _compare(function, vec, loop)

    def test_external_force_matches_scalar_reference(self):
        """The batched f_ext path agrees with per-task scalar evaluate."""
        model = load_robot("iiwa")
        n = 3
        states, u, _ = _batch_inputs(model, RBDFunction.ID, n, seed=9)
        rng = np.random.default_rng(10)
        stack = rng.normal(size=(n, 6))
        vec = batch_evaluate(model, RBDFunction.ID, states, u,
                             f_ext={2: stack}, engine="vectorized")
        for k in range(n):
            direct = evaluate(model, RBDFunction.ID, states.q[k],
                              states.qd[k], u[k], f_ext={2: stack[k]})
            np.testing.assert_allclose(vec[k], direct, **TOL)

    def test_bad_f_ext_shape_rejected(self):
        with pytest.raises(ValueError, match="f_ext"):
            normalize_f_ext({0: np.zeros((3, 5))}, 3)


class TestEngineSelection:
    def test_registry_contents(self):
        assert available_engines() == (
            "compiled", "jit", "loop", "process", "vectorized"
        )
        assert isinstance(get_engine("loop"), LoopEngine)
        assert isinstance(get_engine("vectorized"), VectorizedEngine)
        assert isinstance(get_engine("compiled"), CompiledEngine)

    def test_default_is_vectorized(self):
        assert default_engine_name() == "vectorized"
        assert isinstance(get_engine(), VectorizedEngine)
        assert isinstance(get_engine(None), VectorizedEngine)

    def test_instance_passthrough(self):
        engine = get_engine("loop")
        assert get_engine(engine) is engine
        assert isinstance(engine, Engine)

    def test_set_default_engine_roundtrip(self):
        from repro.dynamics.engine import default_engine_explicit

        assert not default_engine_explicit()
        set_default_engine("loop")
        try:
            assert default_engine_name() == "loop"
            assert isinstance(get_engine(), LoopEngine)
            assert default_engine_explicit()
        finally:
            # Un-pin so later tests (e.g. the serve default) see the
            # unmodified process default again.
            set_default_engine(None)
        assert default_engine_name() == "vectorized"
        assert not default_engine_explicit()

    def test_unknown_engine_rejected(self):
        with pytest.raises(KeyError, match="unknown engine"):
            get_engine("cuda")
        with pytest.raises(KeyError, match="unknown engine"):
            set_default_engine("cuda")

    def test_default_engine_used_by_batch_evaluate(self):
        """Per-call selection overrides the process default."""
        model = load_robot("double_pendulum")
        states, u, _ = _batch_inputs(model, RBDFunction.FD, 2, seed=1)
        by_default = batch_evaluate(model, RBDFunction.FD, states, u)
        by_name = batch_evaluate(model, RBDFunction.FD, states, u,
                                 engine="vectorized")
        for a, b in zip(by_default, by_name):
            np.testing.assert_allclose(a, b, rtol=0, atol=0)
