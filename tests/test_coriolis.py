"""Tests for the Coriolis matrix / equation-of-motion decomposition."""

import numpy as np
import pytest

from repro.dynamics.coriolis import (
    coriolis_matrix,
    equation_of_motion_terms,
    mass_matrix_time_derivative,
)
from repro.dynamics.rnea import rnea
from repro.errors import ModelError
from repro.model.library import double_pendulum, hyq, iiwa, serial_chain, tiago


@pytest.mark.parametrize("builder", [double_pendulum, iiwa, tiago,
                                     lambda: serial_chain(4, seed=9)])
class TestEquationOfMotion:
    def test_matches_rnea(self, builder, rng):
        """tau == M qdd + C qd + g for coordinate-velocity robots."""
        model = builder()
        q, qd = model.random_state(rng)
        qdd = rng.normal(size=model.nv)
        m, c, g = equation_of_motion_terms(model, q, qd)
        assert np.allclose(
            m @ qdd + c @ qd + g, rnea(model, q, qd, qdd), atol=1e-6
        )

    def test_passivity_skew_symmetry(self, builder, rng):
        """dM/dt - 2C is skew-symmetric (Christoffel construction)."""
        model = builder()
        q, qd = model.random_state(rng)
        c = coriolis_matrix(model, q, qd)
        m_dot = mass_matrix_time_derivative(model, q, qd)
        s = m_dot - 2.0 * c
        assert np.allclose(s, -s.T, atol=1e-5)

    def test_linear_in_velocity(self, builder, rng):
        model = builder()
        q, qd = model.random_state(rng)
        c1 = coriolis_matrix(model, q, qd)
        c2 = coriolis_matrix(model, q, 2.0 * qd)
        assert np.allclose(c2, 2.0 * c1, atol=1e-6)

    def test_zero_at_rest(self, builder, rng):
        model = builder()
        q = model.random_q(rng)
        c = coriolis_matrix(model, q, np.zeros(model.nv))
        assert np.allclose(c, 0.0, atol=1e-9)


class TestQuasiVelocityGuard:
    def test_floating_base_rejected(self, rng):
        model = hyq()
        q, qd = model.random_state(rng)
        with pytest.raises(ModelError):
            coriolis_matrix(model, q, qd)

    def test_error_names_the_joint(self, rng):
        model = hyq()
        q, qd = model.random_state(rng)
        with pytest.raises(ModelError, match="FloatingJoint"):
            coriolis_matrix(model, q, qd)
