"""Tests for the CPU/GPU/Robomorphic baseline models and their calibration
against the paper's published ratios (Section VI-A)."""

import numpy as np
import pytest

from repro.baselines import calibration
from repro.baselines.cpu import CpuDynamicsModel
from repro.baselines.gpu import GpuDynamicsModel
from repro.baselines.platforms import (
    AGX_ORIN_CPU,
    AGX_ORIN_GPU,
    I7_7700,
    I9_13900HX,
    RTX_2080,
    RTX_4090M,
)
from repro.baselines.robomorphic import RobomorphicModel
from repro.core import DaduRBD
from repro.dynamics.functions import RBDFunction
from repro.model.library import atlas, hyq, iiwa

FUNCS = [
    RBDFunction.ID, RBDFunction.FD, RBDFunction.M,
    RBDFunction.MINV, RBDFunction.DID, RBDFunction.DFD,
]


@pytest.fixture(scope="module")
def evaluation():
    """Latency/throughput for ours and all platforms, all cells of Fig 15."""
    robots = [iiwa(), hyq(), atlas()]
    cells = []
    for robot in robots:
        acc = DaduRBD(robot)
        cpu_agx = CpuDynamicsModel(AGX_ORIN_CPU, robot)
        cpu_i9 = CpuDynamicsModel(I9_13900HX, robot)
        gpu_agx = GpuDynamicsModel(AGX_ORIN_GPU, robot)
        gpu_m = GpuDynamicsModel(RTX_4090M, robot)
        for f in FUNCS:
            cells.append({
                "robot": robot.name,
                "function": f,
                "ours_lat": acc.latency_seconds(f),
                "ours_thr": acc.throughput_tasks_per_s(f, 256),
                "agx_cpu_lat": cpu_agx.latency_seconds(f),
                "i9_lat": cpu_i9.latency_seconds(f),
                "agx_cpu_thr": cpu_agx.throughput_tasks_per_s(f, 256),
                "i9_thr": cpu_i9.throughput_tasks_per_s(f, 256),
                "agx_gpu_thr": gpu_agx.throughput_tasks_per_s(f, 256),
                "rtx4090_thr": gpu_m.throughput_tasks_per_s(f, 256),
            })
    return cells


class TestCpuModel:
    def test_latency_scales_with_robot_size(self):
        small = CpuDynamicsModel(AGX_ORIN_CPU, iiwa())
        big = CpuDynamicsModel(AGX_ORIN_CPU, atlas())
        for f in FUNCS:
            assert big.latency_seconds(f) > small.latency_seconds(f)

    def test_thread_speedup_saturates(self):
        """Fig 2b: adding threads eventually stops helping."""
        speedups = [AGX_ORIN_CPU.thread_speedup(t) for t in range(1, 13)]
        best = AGX_ORIN_CPU.best_threads()
        assert best < 12
        assert speedups[-1] <= max(speedups)

    def test_multithread_curve_monotone_then_flat(self):
        model = CpuDynamicsModel(AGX_ORIN_CPU, iiwa())
        curve = model.multithread_curve(RBDFunction.DFD, batch=256)
        times = [t for _, t in curve]
        assert times[0] == 1.0
        assert min(times) < 0.8
        # Beyond the optimum the curve is flat-to-worse, never better.
        best_index = times.index(min(times))
        assert all(t >= min(times) - 1e-9 for t in times[best_index:])

    def test_small_batches_underuse_threads(self):
        model = CpuDynamicsModel(I7_7700, iiwa())
        assert model.effective_threads(8) < model.effective_threads(64)

    def test_dfd_more_expensive_than_id(self):
        model = CpuDynamicsModel(I9_13900HX, hyq())
        assert model.latency_seconds(RBDFunction.DFD) > model.latency_seconds(
            RBDFunction.ID
        )


class TestGpuModel:
    def test_launch_overhead_dominates_single_task(self):
        model = GpuDynamicsModel(AGX_ORIN_GPU, iiwa())
        lat = model.latency_seconds(RBDFunction.ID)
        assert lat > model.platform.launch_overhead_s

    def test_throughput_improves_with_batch(self):
        model = GpuDynamicsModel(RTX_4090M, iiwa())
        t256 = model.throughput_tasks_per_s(RBDFunction.DFD, 256)
        t4096 = model.throughput_tasks_per_s(RBDFunction.DFD, 4096)
        assert t4096 > t256

    def test_batch_curve_monotone(self):
        model = GpuDynamicsModel(RTX_4090M, iiwa())
        curve = model.batch_curve(RBDFunction.DFD, (16, 64, 256, 1024))
        times = [t for _, t in curve]
        assert times == sorted(times)

    def test_peak_throughput_is_limit(self):
        model = GpuDynamicsModel(RTX_4090M, iiwa())
        peak = model.peak_throughput_tasks_per_s(RBDFunction.DFD)
        assert model.throughput_tasks_per_s(RBDFunction.DFD, 100000) < peak


class TestRobomorphic:
    def test_only_supports_difd(self):
        model = RobomorphicModel(iiwa())
        assert model.supports(RBDFunction.DIFD)
        with pytest.raises(ValueError):
            model.latency_seconds(RBDFunction.ID)

    def test_iiwa_latency_anchor(self):
        model = RobomorphicModel(iiwa())
        assert model.latency_seconds(RBDFunction.DIFD) * 1e6 == pytest.approx(
            calibration.DIFD_IIWA_LATENCY_US_ROBOMORPHIC, rel=1e-6
        )

    def test_bigger_robot_slower(self):
        assert (
            RobomorphicModel(atlas()).latency_seconds(RBDFunction.DIFD)
            > RobomorphicModel(iiwa()).latency_seconds(RBDFunction.DIFD)
        )

    def test_low_pipeline_overlap(self):
        model = RobomorphicModel(iiwa())
        ii = model.initiation_interval_seconds(RBDFunction.DIFD)
        assert ii > 0.8 * model.latency_seconds(RBDFunction.DIFD)


class TestPaperRatioCalibration:
    """The average ratios of Section VI-A must land near the paper."""

    def _mean(self, cells, ours, theirs):
        return float(np.mean([c[ours] / c[theirs] for c in cells]))

    def test_latency_vs_agx_cpu(self, evaluation):
        got = self._mean(evaluation, "ours_lat", "agx_cpu_lat")
        assert got == pytest.approx(
            calibration.LATENCY_RATIO_VS_AGX_CPU[1], rel=0.15
        )

    def test_latency_vs_i9(self, evaluation):
        got = self._mean(evaluation, "ours_lat", "i9_lat")
        assert got == pytest.approx(calibration.LATENCY_RATIO_VS_I9[1], rel=0.15)

    def test_i9_sometimes_beats_us_on_latency(self, evaluation):
        """The paper's i9 range crosses 1.0 (0.34-1.91)."""
        ratios = [c["ours_lat"] / c["i9_lat"] for c in evaluation]
        assert min(ratios) < 1.0 < max(ratios)

    def test_throughput_vs_agx_cpu(self, evaluation):
        got = self._mean(evaluation, "ours_thr", "agx_cpu_thr") ** -1
        want = 1.0 / calibration.THROUGHPUT_RATIO_VS_AGX_CPU[1]
        assert got == pytest.approx(want, rel=0.15)

    def test_throughput_vs_agx_gpu(self, evaluation):
        ratios = [c["ours_thr"] / c["agx_gpu_thr"] for c in evaluation]
        assert float(np.mean(ratios)) == pytest.approx(
            calibration.THROUGHPUT_RATIO_VS_AGX_GPU[1], rel=0.15
        )

    def test_throughput_vs_i9(self, evaluation):
        ratios = [c["ours_thr"] / c["i9_thr"] for c in evaluation]
        assert float(np.mean(ratios)) == pytest.approx(
            calibration.THROUGHPUT_RATIO_VS_I9[1], rel=0.15
        )

    def test_throughput_vs_rtx4090m(self, evaluation):
        ratios = [c["ours_thr"] / c["rtx4090_thr"] for c in evaluation]
        assert float(np.mean(ratios)) == pytest.approx(
            calibration.THROUGHPUT_RATIO_VS_RTX4090M[1], rel=0.15
        )

    def test_4090m_sometimes_beats_us(self, evaluation):
        """Paper: 0.5x-2.8x — the 4090M wins some functions."""
        ratios = [c["ours_thr"] / c["rtx4090_thr"] for c in evaluation]
        assert min(ratios) < 1.0 < max(ratios)

    def test_we_always_beat_agx_platforms_on_throughput(self, evaluation):
        for c in evaluation:
            assert c["ours_thr"] > c["agx_cpu_thr"], c


class TestFig16Calibration:
    def test_speedups_vs_all_platforms(self):
        acc = DaduRBD(iiwa())
        robo = RobomorphicModel(iiwa())
        cpu = CpuDynamicsModel(I7_7700, iiwa())
        gpu = GpuDynamicsModel(RTX_2080, iiwa())
        for batch, (fpga, cpu_x, gpu_x) in calibration.FIG16_SPEEDUPS.items():
            ours = acc.batch_seconds(RBDFunction.DIFD, batch)
            got_fpga = robo.batch_seconds(RBDFunction.DIFD, batch) / ours
            got_cpu = cpu.batch_seconds(RBDFunction.DIFD, batch) / ours
            got_gpu = gpu.batch_seconds(RBDFunction.DIFD, batch) / ours
            assert got_fpga == pytest.approx(fpga, rel=0.15), batch
            assert got_cpu == pytest.approx(cpu_x, rel=0.3), batch
            assert got_gpu == pytest.approx(gpu_x, rel=0.35), batch


class TestFig17Calibration:
    def test_crossover_band(self):
        """The 4090M overtakes Dadu-RBD between batch 512 and 1024."""
        acc = DaduRBD(iiwa())
        gpu = GpuDynamicsModel(RTX_4090M, iiwa())
        ours_512 = acc.batch_seconds(RBDFunction.DFD, 512)
        gpu_512 = gpu.batch_seconds(RBDFunction.DFD, 512)
        ours_1024 = acc.batch_seconds(RBDFunction.DFD, 1024)
        gpu_1024 = gpu.batch_seconds(RBDFunction.DFD, 1024)
        assert ours_512 < gpu_512
        assert ours_1024 > gpu_1024

    def test_agx_gpu_never_catches_up(self):
        acc = DaduRBD(iiwa())
        gpu = GpuDynamicsModel(AGX_ORIN_GPU, iiwa())
        for batch in calibration.FIG17_BATCHES:
            assert acc.batch_seconds(RBDFunction.DFD, batch) < (
                gpu.batch_seconds(RBDFunction.DFD, batch)
            )


class TestEnergyCalibration:
    def test_robomorphic_energy_and_edp(self):
        """Section VI-C: 2.0x energy, 13.2x EDP advantage over Robomorphic."""
        acc = DaduRBD(iiwa())
        robo = RobomorphicModel(iiwa())
        ours_thr = acc.throughput_tasks_per_s(RBDFunction.DIFD, 256)
        robo_thr = robo.throughput_tasks_per_s(RBDFunction.DIFD, 256)
        speed_ratio = ours_thr / robo_thr
        assert speed_ratio == pytest.approx(
            calibration.SPEED_RATIO_VS_ROBOMORPHIC, rel=0.1
        )
        ours_energy = acc.power_w(RBDFunction.DIFD) / ours_thr
        robo_energy = robo.power_w / robo_thr
        assert robo_energy / ours_energy == pytest.approx(
            calibration.ENERGY_RATIO_ROBOMORPHIC_OVER_OURS, rel=0.15
        )
        ours_edp = ours_energy / ours_thr
        robo_edp = robo_energy / robo_thr
        assert robo_edp / ours_edp == pytest.approx(
            calibration.EDP_RATIO_VS_ROBOMORPHIC, rel=0.15
        )
