"""Equivalence and structure suite for the compiled execution plans.

The ``"compiled"`` engine must be numerically interchangeable with the
``"loop"`` reference — same Table-I function, same robot, same batch — to
1e-10, across every library robot, the batch-size extremes the serve
runtime produces (singleton flushes and full 256-task accelerator loads)
and the external-force path.  Structure tests pin the compile-time
invariants the kernels rely on: the level schedule covers every link
exactly once with parents strictly shallower, slots are level-contiguous,
and workspaces are reused rather than regrown.
"""

import threading

import numpy as np
import pytest

from repro.dynamics import BatchStates, batch_evaluate, evaluate
from repro.dynamics.engine import CompiledEngine, get_engine
from repro.dynamics.functions import RBDFunction
from repro.dynamics.plan import ExecutionPlan, plan_for
from repro.model.library import ROBOT_REGISTRY, load_robot, random_tree
from repro.model.topology import reroot, split_floating_base

TOL = dict(rtol=1e-10, atol=1e-10)
ROBOTS = sorted(ROBOT_REGISTRY)
FUNCTIONS = list(RBDFunction)
#: Functions whose loop reference is cheap enough for full 256-task runs.
DIRECT_FUNCTIONS = [RBDFunction.ID, RBDFunction.FD,
                    RBDFunction.M, RBDFunction.MINV]
DERIV_FUNCTIONS = [RBDFunction.DID, RBDFunction.DFD, RBDFunction.DIFD]


def _batch_inputs(model, function, n, seed=0):
    """(states, u, minv) operands for one batched call of ``function``."""
    rng = np.random.default_rng(seed)
    states = BatchStates.random(model, n, seed=seed)
    u = rng.normal(size=(n, model.nv))
    minv = None
    if function is RBDFunction.DIFD:
        minv = np.stack([
            evaluate(model, RBDFunction.MINV, states.q[k])
            for k in range(n)
        ])
    return states, u, minv


def _random_f_ext(model, n, seed):
    """Mixed-convention external forces: per-task and shared stacks."""
    rng = np.random.default_rng(seed)
    return {
        0: rng.normal(size=(n, 6)),            # per-task stack
        model.nb - 1: rng.normal(size=6),      # shared by every task
    }


def _compare(got, want):
    """Assert two batch_evaluate result lists agree to 1e-10."""
    assert len(got) == len(want)
    for a, b in zip(got, want):
        if hasattr(a, "dqdd_dq"):
            np.testing.assert_allclose(a.qdd, b.qdd, **TOL)
            np.testing.assert_allclose(a.dqdd_dq, b.dqdd_dq, **TOL)
            np.testing.assert_allclose(a.dqdd_dqd, b.dqdd_dqd, **TOL)
            np.testing.assert_allclose(a.dqdd_dtau, b.dqdd_dtau, **TOL)
        elif hasattr(a, "dtau_dq"):
            np.testing.assert_allclose(a.dtau_dq, b.dtau_dq, **TOL)
            np.testing.assert_allclose(a.dtau_dqd, b.dtau_dqd, **TOL)
        else:
            np.testing.assert_allclose(a, b, **TOL)


class TestPlanEquivalence:
    """compiled == loop on every robot x function the library knows."""

    @pytest.mark.parametrize("function", FUNCTIONS, ids=lambda f: f.value)
    @pytest.mark.parametrize("robot", ROBOTS)
    def test_every_robot_and_function(self, robot, function):
        model = load_robot(robot)
        states, u, minv = _batch_inputs(model, function, n=4, seed=3)
        loop = batch_evaluate(model, function, states, u, minv=minv,
                              engine="loop")
        comp = batch_evaluate(model, function, states, u, minv=minv,
                              engine="compiled")
        _compare(comp, loop)

    @pytest.mark.parametrize("function", FUNCTIONS, ids=lambda f: f.value)
    @pytest.mark.parametrize("robot", ROBOTS)
    def test_every_robot_and_function_with_f_ext(self, robot, function):
        if function in (RBDFunction.M, RBDFunction.MINV):
            pytest.skip("mass-matrix functions take no forces")
        model = load_robot(robot)
        states, u, minv = _batch_inputs(model, function, n=4, seed=4)
        f_ext = _random_f_ext(model, 4, seed=40)
        loop = batch_evaluate(model, function, states, u, minv=minv,
                              f_ext=f_ext, engine="loop")
        comp = batch_evaluate(model, function, states, u, minv=minv,
                              f_ext=f_ext, engine="compiled")
        _compare(comp, loop)

    @pytest.mark.parametrize("function", FUNCTIONS, ids=lambda f: f.value)
    @pytest.mark.parametrize("n", [1, 256])
    def test_batch_size_extremes(self, function, n):
        """Singleton flushes and full accelerator loads agree (iiwa)."""
        model = load_robot("iiwa")
        states, u, minv = _batch_inputs(model, function, n=n, seed=5)
        loop = batch_evaluate(model, function, states, u, minv=minv,
                              engine="loop")
        comp = batch_evaluate(model, function, states, u, minv=minv,
                              engine="compiled")
        _compare(comp, loop)

    @pytest.mark.parametrize("function", DIRECT_FUNCTIONS,
                             ids=lambda f: f.value)
    @pytest.mark.parametrize("n", [1, 256])
    def test_batch_size_extremes_branched(self, function, n):
        """Batch extremes on a branched robot, against the loop engine."""
        model = load_robot("quadruped_arm")
        states, u, minv = _batch_inputs(model, function, n=n, seed=6)
        loop = batch_evaluate(model, function, states, u, minv=minv,
                              engine="loop")
        comp = batch_evaluate(model, function, states, u, minv=minv,
                              engine="compiled")
        _compare(comp, loop)

    @pytest.mark.parametrize("function", DERIV_FUNCTIONS,
                             ids=lambda f: f.value)
    def test_batch_256_branched_derivatives(self, function):
        """Derivative suite at 256 on a branched robot.

        The reference here is the vectorized engine (itself loop-equivalent
        per tests/test_engine.py); a 256-task loop-engine derivative run on
        a 24-DOF robot would dominate the whole suite's runtime.
        """
        model = load_robot("quadruped_arm")
        states, u, minv = _batch_inputs(model, function, n=256, seed=7)
        f_ext = _random_f_ext(model, 256, seed=70)
        vec = batch_evaluate(model, function, states, u, minv=minv,
                             f_ext=f_ext, engine="vectorized")
        comp = batch_evaluate(model, function, states, u, minv=minv,
                              f_ext=f_ext, engine="compiled")
        _compare(comp, vec)

    @pytest.mark.parametrize("n", [1, 256])
    def test_f_ext_at_batch_extremes(self, n):
        model = load_robot("hyq")
        states, u, _ = _batch_inputs(model, RBDFunction.FD, n=n, seed=8)
        f_ext = _random_f_ext(model, n, seed=80)
        loop = batch_evaluate(model, RBDFunction.FD, states, u,
                              f_ext=f_ext, engine="loop")
        comp = batch_evaluate(model, RBDFunction.FD, states, u,
                              f_ext=f_ext, engine="compiled")
        _compare(comp, loop)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_trees(self, seed):
        """Random (non-library) topologies, including non-contiguous
        subtrees, stay loop-equivalent."""
        model = random_tree(9, seed=seed, floating=(seed % 2 == 0))
        states, u, _ = _batch_inputs(model, RBDFunction.DFD, n=3, seed=seed)
        for function in (RBDFunction.ID, RBDFunction.M, RBDFunction.FD,
                         RBDFunction.DFD):
            loop = batch_evaluate(model, function, states, u, engine="loop")
            comp = batch_evaluate(model, function, states, u,
                                  engine="compiled")
            _compare(comp, loop)

    def test_rewritten_topologies(self):
        """Plans survive topology rewriting (reroot's ScrewJoints use the
        generic transform path; split bases add multi-DOF interior
        levels)."""
        for model in (reroot(load_robot("atlas"), "torso2"),
                      split_floating_base(load_robot("hyq"))):
            states, u, _ = _batch_inputs(model, RBDFunction.FD, n=3, seed=9)
            for function in (RBDFunction.ID, RBDFunction.FD,
                             RBDFunction.MINV, RBDFunction.DID):
                loop = batch_evaluate(model, function, states, u,
                                      engine="loop")
                comp = batch_evaluate(model, function, states, u,
                                      engine="compiled")
                _compare(comp, loop)


class TestPlanStructure:
    @pytest.mark.parametrize("robot", ROBOTS)
    def test_slots_cover_links_level_contiguously(self, robot):
        model = load_robot(robot)
        plan = plan_for(model)
        seen = []
        for lvl in plan.levels:
            assert lvl.hi - lvl.lo == len(lvl.links)
            for pos, link in enumerate(lvl.links):
                slot = lvl.lo + pos
                assert plan.slot_of_link[link] == slot
                assert plan.link_of_slot[slot] == link
                seen.append(int(link))
            # Parents of a level live strictly before the level's slab
            # (parent-before-child over slots).
            if not lvl.is_root:
                assert lvl.parent_slots.max() < lvl.lo
        assert sorted(seen) == list(range(model.nb))

    @pytest.mark.parametrize("robot", ROBOTS)
    def test_transform_groups_cover_slots(self, robot):
        plan = plan_for(load_robot(robot))
        covered = sorted(
            int(s) for g in plan.transform_groups for s in g.slots
        )
        assert covered == list(range(plan.nb))

    def test_plan_cache_is_per_model_instance(self):
        model = load_robot("iiwa")
        assert plan_for(model) is plan_for(model)
        fresh = load_robot("iiwa", fresh=True)
        assert plan_for(fresh) is not plan_for(model)

    def test_plan_cache_releases_transient_models(self):
        """Plans hold no back-reference to their model, so the weak cache
        lets a transient model (and its plan) be collected."""
        import gc
        import weakref

        model = random_tree(5, seed=99)
        ref = weakref.ref(model)
        plan = plan_for(model)
        assert plan.robot_name == model.name
        del model, plan
        gc.collect()
        assert ref() is None

    def test_describe(self):
        plan = plan_for(load_robot("quadruped_arm"))
        info = plan.describe()
        assert info["links"] == 19
        assert info["dofs"] == 24
        assert info["levels"] == 7
        assert info["max_level_width"] == 5
        assert sum(info["level_widths"]) == 19

    def test_workspace_reused_not_regrown(self):
        """Steady-state calls share one workspace; capacity only grows."""
        model = load_robot("double_pendulum", fresh=True)
        plan = ExecutionPlan(model)
        states, u, _ = _batch_inputs(model, RBDFunction.FD, n=8, seed=1)
        plan.fd_batch(states.q, states.qd, u)
        ws = plan.workspace(8)
        x_buffer = ws.X
        assert ws.capacity == 8
        # A smaller batch reuses the same buffers...
        small = BatchStates.random(model, 3, seed=2)
        plan.fd_batch(small.q, small.qd, u[:3])
        assert plan.workspace(3) is ws
        assert plan.workspace(3).X is x_buffer
        # ...and only a larger one grows them.
        big = BatchStates.random(model, 16, seed=3)
        plan.fd_batch(big.q, big.qd, np.zeros((16, model.nv)))
        assert plan.workspace(1).capacity == 16
        assert plan.workspace(1).nbytes() > 0

    def test_workspaces_are_thread_local(self):
        """Concurrent shard workers must not share recursion state."""
        model = load_robot("hyq")
        engine = get_engine("compiled")
        assert isinstance(engine, CompiledEngine)
        states, u, _ = _batch_inputs(model, RBDFunction.FD, n=16, seed=11)
        expected = batch_evaluate(model, RBDFunction.FD, states, u,
                                  engine="loop")
        errors = []

        def worker():
            try:
                for _ in range(10):
                    got = batch_evaluate(model, RBDFunction.FD, states, u,
                                         engine="compiled")
                    _compare(got, expected)
            except Exception as exc:  # surfaced on the main thread
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_outputs_are_decoupled_from_workspace(self):
        """Returned arrays must survive the next call on the same plan."""
        model = load_robot("iiwa")
        states, u, _ = _batch_inputs(model, RBDFunction.ID, n=2, seed=12)
        first = batch_evaluate(model, RBDFunction.ID, states, u,
                               engine="compiled")
        snapshot = [np.array(v, copy=True) for v in first]
        other = BatchStates.random(model, 2, seed=13)
        batch_evaluate(model, RBDFunction.ID, other,
                       np.ones((2, model.nv)), engine="compiled")
        for value, kept in zip(first, snapshot):
            np.testing.assert_array_equal(value, kept)


def _packed_model(name):
    """Branched / rewritten / random topologies the packing must survive."""
    if name == "rerooted_atlas":
        return reroot(load_robot("atlas"), "torso2")
    if name == "split_hyq":
        return split_floating_base(load_robot("hyq"))
    if name == "random_tree":
        return random_tree(9, seed=2, floating=True)
    return load_robot(name)


PACKED_TOPOLOGIES = ["iiwa", "hyq", "quadruped_arm", "atlas",
                     "rerooted_atlas", "split_hyq", "random_tree"]


def _assert_scaled_close(got, want, tol=1e-10):
    """Magnitude-scaled max-abs comparison: the dFD derivative blocks
    reach |dqdd_dq| ~ 1e4 on atlas-sized trees, where a 1e-10 *absolute*
    bound would demand ~1e-14 relative accuracy — below float64
    conditioning through ``-Minv @ dtau``.  Scaling by max(1, |ref|)
    keeps the contract at 1e-10 in the units of the data."""
    got, want = np.asarray(got), np.asarray(want)
    scale = max(1.0, float(np.max(np.abs(want))))
    err = float(np.max(np.abs(got - want)))
    assert err <= tol * scale, (err, scale)


class TestPackedIndices:
    """Compile-time invariants of the packed column layout (Fig 7b).

    The packed sweeps are only as correct as the gather/scatter geometry
    they run on: ``col_perm`` must be a permutation of the DOF columns,
    each level's prefix/suffix windows must be exactly the path/subtree
    column unions the kernels assume are the only nonzero columns, and
    the owned columns must partition each level's band.
    """

    @pytest.mark.parametrize("name", PACKED_TOPOLOGIES)
    def test_col_perm_is_permutation(self, name):
        model = _packed_model(name)
        plan = ExecutionPlan(model, packing="always")
        nv = model.nv
        assert sorted(plan.col_perm.tolist()) == list(range(nv))
        np.testing.assert_array_equal(plan.col_perm[plan.col_pos],
                                      np.arange(nv))
        np.testing.assert_array_equal(plan.col_pos[plan.col_perm],
                                      np.arange(nv))

    @pytest.mark.parametrize("name", PACKED_TOPOLOGIES)
    def test_level_windows_are_exact_column_unions(self, name):
        """Suffix [wp, nv) == the level links' subtree-column union,
        exactly; prefix [0, w) == all columns owned at depth <= level
        (the contiguous cover of the path union, which it must contain);
        owned columns partition the level band [wp, w)."""
        model = _packed_model(name)
        plan = ExecutionPlan(model, packing="always")
        nv = model.nv
        shallow_union: set[int] = set()
        for lvl, pk in zip(plan.levels, plan.packed_levels):
            path_union = set()
            subtree_union = set()
            for link in lvl.links:
                path_union.update(model.supporting_dofs(int(link)))
                sl = model.dof_slice(int(link))
                shallow_union.update(range(sl.start, sl.stop))
                for j in model.subtree(int(link)):
                    sl = model.dof_slice(j)
                    subtree_union.update(range(sl.start, sl.stop))
            prefix = set(plan.col_perm[:pk.w].tolist())
            # The prefix is exactly the depth-<= union, and covers every
            # column the forward transfer stacks can touch (path union).
            assert prefix == shallow_union
            assert path_union <= prefix
            # The suffix is exactly where backward force accumulators
            # can be nonzero: the level links' subtree columns.
            assert set(plan.col_perm[pk.wp:].tolist()) == subtree_union
            own = np.sort(np.concatenate([
                np.asarray(p).reshape(-1) for p in pk.own_pos
            ]))
            np.testing.assert_array_equal(own, np.arange(pk.wp, pk.w))
        # The last level's prefix covers every DOF column.
        assert plan.packed_levels[-1].w == nv

    @pytest.mark.parametrize("name", PACKED_TOPOLOGIES)
    def test_gather_scatter_roundtrip_identity(self, name):
        model = _packed_model(name)
        plan = ExecutionPlan(model, packing="always")
        nv = model.nv
        rng = np.random.default_rng(17)
        arr = rng.standard_normal((3, nv))
        packed = arr[:, plan.col_perm]
        # Unpermute-by-gather and scatter-by-assign both invert exactly.
        np.testing.assert_array_equal(packed[:, plan.col_pos], arr)
        out = np.empty_like(arr)
        out[:, plan.col_perm] = packed
        np.testing.assert_array_equal(out, arr)
        # The paired (row, column) gather the matrix extractions use.
        sym = rng.standard_normal((2, nv, nv))
        both = sym[:, plan.col_perm[:, None], plan.col_perm[None, :]]
        np.testing.assert_array_equal(
            both[:, plan.col_pos[:, None], plan.col_pos[None, :]], sym
        )

    @pytest.mark.parametrize("name", PACKED_TOPOLOGIES)
    def test_forced_packing_matches_dense(self, name):
        """packing="always" == packing="never" on the packed sweeps,
        including serial chains and rewritten topologies where auto mode
        would not pack."""
        model = _packed_model(name)
        packed = ExecutionPlan(model, packing="always")
        dense = ExecutionPlan(model, packing="never")
        states, u, _ = _batch_inputs(model, RBDFunction.DFD, n=4, seed=21)
        q, qd = states.q, states.qd
        _assert_scaled_close(packed.minv_batch(q), dense.minv_batch(q))
        for a, b in zip(packed.dfd_batch(q, qd, u),
                        dense.dfd_batch(q, qd, u)):
            _assert_scaled_close(a, b)
        for a, b in zip(packed.did_batch(q, qd, u),
                        dense.did_batch(q, qd, u)):
            _assert_scaled_close(a, b)
