"""Unit tests for joint models.

The load-bearing property is the tangent convention::

    X_J(q [+] eps*e_k) ~= (I - eps*crm(S_k)) X_J(q)

verified numerically for every joint type — the derivative pipeline and the
re-rooting transform both rely on it.
"""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.joints import (
    CylindricalJoint,
    FloatingJoint,
    HelicalJoint,
    PrismaticJoint,
    RevoluteJoint,
    ScrewJoint,
    SphericalJoint,
    Translation3Joint,
)
from repro.spatial.motion import crm
from repro.spatial.transforms import is_spatial_transform

ALL_JOINTS = [
    RevoluteJoint(np.array([0.0, 0.0, 1.0])),
    RevoluteJoint(np.array([0.0, 1.0, 0.0])),
    RevoluteJoint(np.array([1.0, 1.0, 0.0])),  # non-axis-aligned
    PrismaticJoint(np.array([1.0, 0.0, 0.0])),
    HelicalJoint(np.array([0.0, 0.0, 1.0]), pitch=0.25),
    CylindricalJoint(np.array([0.0, 1.0, 0.0])),
    SphericalJoint(),
    Translation3Joint(),
    FloatingJoint(),
    ScrewJoint(np.array([0.0, 0.0, 1.0, 0.1, -0.2, 0.05])),
]


def _ids(joints):
    return [f"{j.type_name}-{k}" for k, j in enumerate(joints)]


@pytest.mark.parametrize("joint", ALL_JOINTS, ids=_ids(ALL_JOINTS))
class TestJointContract:
    def test_subspace_shape(self, joint):
        s = joint.motion_subspace()
        assert s.shape == (6, joint.nv)

    def test_transform_is_plucker(self, joint, rng):
        q = joint.random(rng)
        assert is_spatial_transform(joint.joint_transform(q))

    def test_neutral_is_identity(self, joint):
        assert np.allclose(joint.joint_transform(joint.neutral()), np.eye(6))

    def test_tangent_derivative_convention(self, joint, rng):
        """dX/d(delta_k) == -crm(S_k) @ X at any configuration."""
        q = joint.random(rng)
        x0 = joint.joint_transform(q)
        s = joint.motion_subspace()
        eps = 1e-7
        for k in range(joint.nv):
            dq = np.zeros(joint.nv)
            dq[k] = eps
            x_plus = joint.joint_transform(joint.integrate(q, dq))
            x_minus = joint.joint_transform(joint.integrate(q, -dq))
            numeric = (x_plus - x_minus) / (2 * eps)
            analytic = -crm(s[:, k]) @ x0
            assert np.allclose(numeric, analytic, atol=1e-6), f"dof {k}"

    def test_integrate_zero_is_identity(self, joint, rng):
        q = joint.random(rng)
        q_new = joint.integrate(q, np.zeros(joint.nv))
        assert np.allclose(
            joint.joint_transform(q_new), joint.joint_transform(q), atol=1e-12
        )

    def test_cost_profile_consistent(self, joint):
        profile = joint.cost_profile()
        assert profile.nv == joint.nv
        assert profile.x_mults >= 0
        assert profile.trig_pairs >= 0


class TestRevoluteSpecifics:
    def test_z_rotation_values(self):
        joint = RevoluteJoint(np.array([0.0, 0.0, 1.0]))
        x = joint.joint_transform(np.array([np.pi / 2]))
        v_parent = np.array([0.0, 0.0, 0.0, 1.0, 0.0, 0.0])
        v_child = x @ v_parent
        assert np.allclose(v_child[3:], [0.0, -1.0, 0.0], atol=1e-12)

    def test_trig_path_matches(self, rng):
        joint = RevoluteJoint(np.array([0.0, 1.0, 0.0]))
        q = joint.random(rng)
        expected = joint.joint_transform(q)
        got = joint.joint_transform_trig(np.sin(q[0]), np.cos(q[0]))
        assert np.allclose(got, expected, atol=1e-12)

    def test_one_hot_subspace(self):
        s = RevoluteJoint(np.array([0.0, 0.0, 1.0])).motion_subspace()
        assert np.count_nonzero(s) == 1

    def test_axis_normalized(self):
        joint = RevoluteJoint(np.array([0.0, 0.0, 5.0]))
        assert np.isclose(np.linalg.norm(joint.axis), 1.0)

    def test_zero_axis_rejected(self):
        with pytest.raises(ModelError):
            RevoluteJoint(np.zeros(3))


class TestFloatingSpecifics:
    def test_periodicity_via_integrate(self, rng):
        joint = FloatingJoint()
        q = joint.random(rng)
        # Integrate a full turn about z in 4 quarter steps: pose returns.
        step = np.array([0.0, 0.0, np.pi / 2, 0.0, 0.0, 0.0])
        q_now = q
        for _ in range(4):
            q_now = joint.integrate(q_now, step)
        assert np.allclose(
            joint.joint_transform(q_now), joint.joint_transform(q), atol=1e-9
        )

    def test_pure_translation_moves_in_body_frame(self):
        joint = FloatingJoint()
        # Base rotated 90deg about z; body-frame x-translation moves along
        # world y.
        q = np.array([0.0, 0.0, np.pi / 2, 0.0, 0.0, 0.0])
        q_new = joint.integrate(q, np.array([0.0, 0.0, 0.0, 1.0, 0.0, 0.0]))
        assert np.allclose(q_new[3:], [0.0, 1.0, 0.0], atol=1e-12)


class TestSphericalSpecifics:
    def test_integrate_composes_rotations(self, rng):
        from repro.spatial.so3 import exp_so3

        joint = SphericalJoint()
        q = joint.random(rng)
        dq = rng.normal(size=3) * 0.3
        q_new = joint.integrate(q, dq)
        assert np.allclose(
            exp_so3(q_new), exp_so3(q) @ exp_so3(dq), atol=1e-9
        )


class TestScrewSpecifics:
    def test_rejects_zero_screw(self):
        with pytest.raises(ModelError):
            ScrewJoint(np.zeros(6))

    def test_pure_translation_screw(self):
        joint = ScrewJoint(np.array([0.0, 0.0, 0.0, 1.0, 0.0, 0.0]))
        x = joint.joint_transform(np.array([0.5]))
        assert is_spatial_transform(x)

    def test_reduces_to_revolute_when_axis_through_origin(self, rng):
        axis = np.array([0.0, 1.0, 0.0])
        screw = ScrewJoint(np.concatenate([axis, np.zeros(3)]))
        revolute = RevoluteJoint(axis)
        q = np.array([0.9])
        assert np.allclose(
            screw.joint_transform(q), revolute.joint_transform(q), atol=1e-12
        )


class TestHelicalSpecifics:
    def test_pitch_couples_translation(self):
        joint = HelicalJoint(np.array([0.0, 0.0, 1.0]), pitch=0.5)
        s = joint.motion_subspace()[:, 0]
        assert np.isclose(s[5], 0.5 * s[2])


class TestBatchJointTransform:
    """batch_joint_transform == stacked scalar joint_transform, per type.

    The engine equivalence suite only exercises the joint types the robot
    library uses; this closes the gap for every Joint subclass (including
    the helical/cylindrical/spherical/translation overrides and the screw
    fallback).
    """

    @pytest.mark.parametrize(
        "joint", ALL_JOINTS, ids=lambda j: j.structural_signature()
    )
    def test_matches_scalar_stack(self, joint):
        rng = np.random.default_rng(17)
        qs = np.stack([joint.random(rng) for _ in range(5)])
        batched = joint.batch_joint_transform(qs)
        assert batched.shape == (5, 6, 6)
        for k in range(5):
            np.testing.assert_allclose(
                batched[k], joint.joint_transform(qs[k]),
                rtol=1e-12, atol=1e-12,
            )

    def test_batch_of_one(self):
        joint = HelicalJoint(np.array([0.0, 1.0, 0.0]), pitch=0.3)
        q = np.array([[0.7]])
        np.testing.assert_allclose(
            joint.batch_joint_transform(q)[0],
            joint.joint_transform(q[0]),
            rtol=1e-12, atol=1e-12,
        )
