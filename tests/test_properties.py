"""Property-based tests (hypothesis) on the core invariants.

These complement the example-based tests with randomized structure:
random joint angles, random tree shapes, and random pipeline graphs.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.sim import DataflowGraph, JobSpec, simulate
from repro.dynamics.aba import aba
from repro.dynamics.crba import crba
from repro.dynamics.mminv import mass_matrix, mass_matrix_inverse
from repro.dynamics.rnea import rnea
from repro.model.library import random_tree, serial_chain
from repro.spatial.inertia import SpatialInertia
from repro.spatial.motion import crf, crm, cross_motion
from repro.spatial.so3 import exp_so3, log_so3
from repro.spatial.transforms import (
    inverse_transform,
    is_spatial_transform,
    spatial_transform,
)

SLOW = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

vec3 = st.lists(
    st.floats(-2.0, 2.0, allow_nan=False), min_size=3, max_size=3
).map(np.array)

vec6 = st.lists(
    st.floats(-2.0, 2.0, allow_nan=False), min_size=6, max_size=6
).map(np.array)

angle = st.floats(-3.0, 3.0, allow_nan=False)


class TestSpatialProperties:
    @given(w=vec3)
    @SLOW
    def test_exp_log_roundtrip(self, w):
        norm = np.linalg.norm(w)
        if norm > np.pi - 0.05:
            w = w / norm * (np.pi - 0.1)
        assert np.allclose(log_so3(exp_so3(w)), w, atol=1e-8)

    @given(w=vec3, r=vec3)
    @SLOW
    def test_transform_inverse_identity(self, w, r):
        x = spatial_transform(exp_so3(w), r)
        assert is_spatial_transform(x)
        assert np.allclose(inverse_transform(x) @ x, np.eye(6), atol=1e-9)

    @given(a=vec6, b=vec6)
    @SLOW
    def test_motion_cross_antisymmetry(self, a, b):
        assert np.allclose(cross_motion(a, b), -cross_motion(b, a), atol=1e-9)

    @given(v=vec6)
    @SLOW
    def test_crf_duality(self, v):
        assert np.allclose(crf(v), -crm(v).T)

    @given(w=vec3, r=vec3, mass=st.floats(0.1, 10.0))
    @SLOW
    def test_inertia_transform_preserves_spectrum_sign(self, w, r, mass):
        inertia = SpatialInertia(mass, np.zeros(3), mass * 0.02 * np.eye(3))
        x = spatial_transform(exp_so3(w), r)
        transformed = inertia.transform(x).matrix()
        assert np.all(np.linalg.eigvalsh(transformed) > 0)


class TestDynamicsProperties:
    @given(seed=st.integers(0, 10_000), nb=st.integers(2, 8))
    @SLOW
    def test_fd_inverts_id_on_random_trees(self, seed, nb):
        model = random_tree(nb, seed=seed)
        rng = np.random.default_rng(seed + 1)
        q, qd = model.random_state(rng)
        qdd = rng.normal(size=model.nv)
        tau = rnea(model, q, qd, qdd)
        assert np.allclose(aba(model, q, qd, tau), qdd, atol=1e-6)

    @given(seed=st.integers(0, 10_000), nb=st.integers(2, 8))
    @SLOW
    def test_mass_matrix_spd_on_random_trees(self, seed, nb):
        model = random_tree(nb, seed=seed, floating=bool(seed % 2))
        rng = np.random.default_rng(seed)
        m = crba(model, model.random_q(rng))
        assert np.allclose(m, m.T, atol=1e-9)
        assert np.all(np.linalg.eigvalsh(m) > 0)

    @given(seed=st.integers(0, 10_000), nb=st.integers(2, 7))
    @SLOW
    def test_mminvgen_consistency_on_random_trees(self, seed, nb):
        model = random_tree(nb, seed=seed)
        rng = np.random.default_rng(seed)
        q = model.random_q(rng)
        m = mass_matrix(model, q)
        minv = mass_matrix_inverse(model, q)
        assert np.allclose(minv @ m, np.eye(model.nv), atol=1e-6)

    @given(n=st.integers(1, 6), seed=st.integers(0, 100), scale=st.floats(0.5, 2.0))
    @SLOW
    def test_id_scales_with_gravity_at_rest(self, n, seed, scale):
        """tau at rest is linear in the gravity vector."""
        model = serial_chain(n, seed=seed)
        rng = np.random.default_rng(seed)
        q = model.random_q(rng)
        zero = np.zeros(model.nv)
        tau1 = rnea(model, q, zero, zero)
        model.gravity = model.gravity * scale
        tau2 = rnea(model, q, zero, zero)
        assert np.allclose(tau2, scale * tau1, atol=1e-8)


class TestTopologyProperties:
    @given(seed=st.integers(0, 2000), nb=st.integers(3, 8))
    @SLOW
    def test_reroot_preserves_kinetic_energy(self, seed, nb):
        """Re-rooting a random floating tree at a random link preserves
        physics (the hardest invariant in the topology layer)."""
        from repro.dynamics.kinematics import kinetic_energy
        from repro.model.topology import map_state_to_rerooted, reroot

        model = random_tree(nb, seed=seed, floating=True)
        rng = np.random.default_rng(seed + 7)
        target = int(rng.integers(1, nb))
        rerooted = reroot(model, target)
        q, qd = model.random_state(rng)
        q2, qd2 = map_state_to_rerooted(model, rerooted, q, qd)
        assert np.isclose(
            kinetic_energy(model, q, qd),
            kinetic_energy(rerooted, q2, qd2),
            rtol=1e-6,
        )

    @given(seed=st.integers(0, 2000), nb=st.integers(2, 8))
    @SLOW
    def test_split_floating_preserves_energy(self, seed, nb):
        from repro.dynamics.kinematics import kinetic_energy
        from repro.model.topology import map_state_to_split, split_floating_base

        model = random_tree(nb, seed=seed, floating=True)
        split = split_floating_base(model)
        rng = np.random.default_rng(seed)
        q, qd = model.random_state(rng)
        q2, qd2 = map_state_to_split(model, split, q, qd)
        assert np.isclose(
            kinetic_energy(model, q, qd),
            kinetic_energy(split, q2, qd2),
            rtol=1e-7,
        )


class TestSimulatorProperties:
    @given(
        seed=st.integers(0, 5000),
        n_nodes=st.integers(2, 10),
        jobs=st.integers(1, 8),
    )
    @SLOW
    def test_random_dags_complete(self, seed, n_nodes, jobs):
        """Random DAGs never deadlock; makespan >= critical path."""
        rng = np.random.default_rng(seed)
        graph = DataflowGraph()
        for i in range(n_nodes):
            graph.add_stage(f"s{i}", int(rng.integers(1, 8)))
        for i in range(n_nodes):
            n_preds = int(rng.integers(0, min(i, 3) + 1)) if i else 0
            preds = tuple(
                int(p) for p in rng.choice(i, size=n_preds, replace=False)
            ) if n_preds else ()
            graph.add_node(f"s{i}", preds)
        specs = [JobSpec() for _ in range(jobs)]
        result = simulate(graph, specs)
        assert all(np.isfinite(f) for f in result.job_finish)
        assert result.makespan >= graph.critical_path_cycles(1.0, 2.0) - 1e-9


    @given(
        services=st.lists(st.integers(1, 12), min_size=1, max_size=6),
        jobs=st.integers(1, 24),
    )
    @SLOW
    def test_chain_throughput_bound(self, services, jobs):
        """Makespan is never better than the bottleneck bound and the jobs
        all finish after they start."""
        graph = DataflowGraph()
        prev = None
        for i, s in enumerate(services):
            graph.add_stage(f"s{i}", s)
            prev = graph.add_node(f"s{i}", () if prev is None else (prev,))
        result = simulate(graph, [JobSpec() for _ in range(jobs)])
        bottleneck = max(services)
        assert result.makespan >= bottleneck * jobs - 1e-9
        for start, finish in zip(result.job_start, result.job_finish):
            assert finish > start

    @given(
        services=st.lists(st.integers(1, 10), min_size=2, max_size=5),
        jobs=st.integers(2, 16),
    )
    @SLOW
    def test_streaming_never_slower_than_store_forward(self, services, jobs):
        graph = DataflowGraph()
        prev = None
        for i, s in enumerate(services):
            graph.add_stage(f"s{i}", s)
            prev = graph.add_node(f"s{i}", () if prev is None else (prev,))
        specs = [JobSpec() for _ in range(jobs)]
        streamed = simulate(graph, specs, startup_cycles=2.0)
        stored = simulate(graph, specs, startup_cycles=None)
        assert streamed.makespan <= stored.makespan + 1e-9

    @given(jobs=st.integers(2, 12), service=st.integers(1, 9))
    @SLOW
    def test_serial_jobs_cost_sum(self, jobs, service):
        """A fully serial job chain has no pipeline benefit."""
        graph = DataflowGraph()
        graph.add_stage("s", service)
        graph.add_node("s")
        specs = [JobSpec()] + [
            JobSpec(after_jobs=(i,)) for i in range(jobs - 1)
        ]
        result = simulate(graph, specs, transfer_cycles=0)
        assert result.makespan >= jobs * service - 1e-9
