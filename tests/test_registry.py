"""Engine/backend registry contracts: errors, env precedence, threads.

The registries are process-global configuration surfaces; these tests
pin their observable contracts:

* unknown engine/backend names raise clean ``KeyError``s naming the
  known alternatives (and uninstalled-but-registered backends raise
  :class:`~repro.backend.BackendUnavailable` instead of ImportError);
* ``REPRO_ENGINE`` / ``REPRO_BACKEND`` env vars install the process
  default and count as an explicit user pin, while
  ``set_default_engine``/``set_default_backend`` override them for the
  session and ``None`` restores the env-var value;
* lookup/registration is thread-safe: named engines resolve to one
  singleton no matter how many threads race the first instantiation.
"""

import threading

import pytest

import repro.backend as backend_mod
import repro.dynamics.engine as engine_mod
from repro.backend import BackendUnavailable
from repro.dynamics.engine import (
    Engine,
    LoopEngine,
    available_engines,
    default_engine_explicit,
    default_engine_name,
    get_engine,
    register_engine,
    set_default_engine,
)


class TestUnknownNames:
    def test_unknown_engine_get(self):
        with pytest.raises(KeyError, match="unknown engine 'cuda'"):
            get_engine("cuda")

    def test_unknown_engine_set_default(self):
        with pytest.raises(KeyError, match="known engines"):
            set_default_engine("fpga")

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="known backends"):
            backend_mod.get_backend("metal")

    def test_registered_but_uninstalled_backend(self):
        missing = [
            name for name in backend_mod.registered_backends()
            if name not in backend_mod.available_backends()
        ]
        if not missing:
            pytest.skip("every registered backend is installed here")
        with pytest.raises(BackendUnavailable, match="not installed"):
            backend_mod.get_backend(missing[0])

    def test_bad_env_value_reported_lazily(self, monkeypatch):
        """A bad REPRO_ENGINE must fail at first use, naming the var."""
        monkeypatch.setenv("REPRO_ENGINE", "warp-drive")
        set_default_engine(None)  # re-read the env var
        try:
            with pytest.raises(KeyError, match="REPRO_ENGINE='warp-drive'"):
                default_engine_name()
        finally:
            monkeypatch.delenv("REPRO_ENGINE")
            set_default_engine(None)

    def test_bad_backend_env_reported_lazily(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "abacus")
        backend_mod.set_default_backend(None)
        try:
            with pytest.raises(KeyError, match="REPRO_BACKEND='abacus'"):
                backend_mod.default_backend_name()
        finally:
            monkeypatch.delenv("REPRO_BACKEND")
            backend_mod.set_default_backend(None)


class TestEnvPrecedence:
    def test_repro_engine_env_installs_pinned_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "loop")
        set_default_engine(None)  # adopt the env var
        try:
            assert default_engine_name() == "loop"
            assert default_engine_explicit()
            assert isinstance(get_engine(), LoopEngine)
        finally:
            monkeypatch.delenv("REPRO_ENGINE")
            set_default_engine(None)
        assert default_engine_name() == "vectorized"
        assert not default_engine_explicit()

    def test_set_default_overrides_env_and_none_restores_it(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_ENGINE", "loop")
        set_default_engine(None)
        try:
            set_default_engine("compiled")
            assert default_engine_name() == "compiled"
            # Un-pinning restores the env var, not the built-in default.
            set_default_engine(None)
            assert default_engine_name() == "loop"
            assert default_engine_explicit()
        finally:
            monkeypatch.delenv("REPRO_ENGINE")
            set_default_engine(None)

    def test_repro_backend_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        backend_mod.set_default_backend(None)
        try:
            assert backend_mod.default_backend_name() == "numpy"
            assert backend_mod.default_backend_explicit()
        finally:
            monkeypatch.delenv("REPRO_BACKEND")
            backend_mod.set_default_backend(None)
        assert not backend_mod.default_backend_explicit()

    def test_serve_honours_pinned_engine_env(self, monkeypatch):
        """The serve runtime's compiled fallback must yield to an
        explicit REPRO_ENGINE pin (same rule as set_default_engine)."""
        from repro.serve import DynamicsService

        monkeypatch.setenv("REPRO_ENGINE", "vectorized")
        set_default_engine(None)
        try:
            service = DynamicsService(n_shards=1)
            assert service.engine.name == "vectorized"
            service.close()
        finally:
            monkeypatch.delenv("REPRO_ENGINE")
            set_default_engine(None)


class TestThreadSafety:
    def test_concurrent_get_engine_is_singleton(self):
        # Drop any cached instance so threads race the instantiation.
        with engine_mod._REGISTRY_LOCK:
            engine_mod._ENGINES.pop("vectorized", None)
        seen = []
        barrier = threading.Barrier(8)

        def grab():
            barrier.wait()
            seen.append(get_engine("vectorized"))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(e) for e in seen}) == 1

    def test_concurrent_register_and_list(self):
        class DummyEngine(LoopEngine):
            name = "dummy"

        errors = []
        barrier = threading.Barrier(8)

        def churn(k):
            barrier.wait()
            try:
                for _ in range(50):
                    register_engine(f"dummy{k}", DummyEngine)
                    assert f"dummy{k}" in available_engines()
                    assert isinstance(get_engine(f"dummy{k}"), Engine)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(k,))
                   for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Clean the registry back up.
        with engine_mod._REGISTRY_LOCK:
            for k in range(8):
                engine_mod._ENGINE_FACTORIES.pop(f"dummy{k}", None)
                engine_mod._ENGINES.pop(f"dummy{k}", None)

    def test_concurrent_backend_resolution(self):
        seen = []
        barrier = threading.Barrier(8)

        def grab():
            barrier.wait()
            seen.append(backend_mod.get_backend("numpy"))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(b) for b in seen}) == 1
