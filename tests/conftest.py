"""Shared fixtures: robots and random states."""

import numpy as np
import pytest

from repro.model.library import (
    atlas,
    double_pendulum,
    hyq,
    iiwa,
    pendulum,
    quadruped_arm,
    serial_chain,
    spot_arm,
    tiago,
)

_BUILDERS = {
    "pendulum": pendulum,
    "double_pendulum": double_pendulum,
    "iiwa": iiwa,
    "hyq": hyq,
    "atlas": atlas,
    "quadruped_arm": quadruped_arm,
    "spot_arm": spot_arm,
    "tiago": tiago,
    "chain3": lambda: serial_chain(3, seed=7),
}


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(params=["iiwa", "hyq", "atlas"])
def paper_robot(request):
    """The three robots of the paper's evaluation (Fig 15)."""
    return _BUILDERS[request.param]()


@pytest.fixture(params=["iiwa", "hyq", "atlas", "quadruped_arm", "tiago", "chain3"])
def any_robot(request):
    """A broader sweep including SAP-demo robots and a small chain."""
    return _BUILDERS[request.param]()


@pytest.fixture
def iiwa_robot():
    return iiwa()


@pytest.fixture
def hyq_robot():
    return hyq()


@pytest.fixture
def atlas_robot():
    return atlas()


def random_state(model, rng, velocity_scale=1.0):
    return model.random_state(rng, velocity_scale)
