"""Tests for MMinvGen (Algorithm 2) — the paper's fused M / Minv generator."""

import numpy as np
import pytest

from repro.dynamics.crba import crba
from repro.dynamics.mminv import (
    mass_matrix,
    mass_matrix_inverse,
    mass_matrix_inverse_cholesky,
    mminvgen,
)
from repro.errors import ModelError


class TestFlags:
    def test_both_flags_rejected(self, iiwa_robot):
        # The hardware generates M *or* Minv (line 13 corrupts composite
        # inertias); both at once is a caller error.
        with pytest.raises(ModelError):
            mminvgen(iiwa_robot, iiwa_robot.neutral_q(), out_m=True, out_minv=True)

    def test_neither_flag_rejected(self, iiwa_robot):
        with pytest.raises(ModelError):
            mminvgen(iiwa_robot, iiwa_robot.neutral_q())


class TestMassMatrix:
    def test_matches_crba(self, any_robot, rng):
        q = any_robot.random_q(rng)
        assert np.allclose(mass_matrix(any_robot, q), crba(any_robot, q),
                           atol=1e-9)

    def test_symmetric(self, any_robot, rng):
        m = mass_matrix(any_robot, any_robot.random_q(rng))
        assert np.allclose(m, m.T, atol=1e-10)

    def test_multiple_configurations(self, paper_robot, rng):
        for _ in range(3):
            q = paper_robot.random_q(rng)
            assert np.allclose(
                mass_matrix(paper_robot, q), crba(paper_robot, q), atol=1e-9
            )


class TestMassMatrixInverse:
    def test_matches_cholesky_route(self, any_robot, rng):
        q = any_robot.random_q(rng)
        got = mass_matrix_inverse(any_robot, q)
        ref = mass_matrix_inverse_cholesky(any_robot, q)
        assert np.allclose(got, ref, atol=1e-7)

    def test_product_is_identity(self, any_robot, rng):
        q = any_robot.random_q(rng)
        minv = mass_matrix_inverse(any_robot, q)
        m = crba(any_robot, q)
        assert np.allclose(minv @ m, np.eye(any_robot.nv), atol=1e-7)

    def test_symmetric(self, any_robot, rng):
        minv = mass_matrix_inverse(any_robot, any_robot.random_q(rng))
        assert np.allclose(minv, minv.T, atol=1e-8)

    def test_positive_definite(self, paper_robot, rng):
        minv = mass_matrix_inverse(paper_robot, paper_robot.random_q(rng))
        assert np.all(np.linalg.eigvalsh((minv + minv.T) / 2) > 0)

    def test_branch_sparsity_of_inverse_is_dense(self, rng):
        """Unlike M, Minv couples different branches through the floating
        base — a structural fact the paper's dataflow must handle."""
        from repro.model.library import hyq

        model = hyq()
        q = model.random_q(rng)
        minv = mass_matrix_inverse(model, q)
        lf = model.dof_slice(model.link_index("lf_kfe"))
        rh = model.dof_slice(model.link_index("rh_haa"))
        assert not np.allclose(minv[lf, rh], 0.0)


class TestFixedBaseVsFloating:
    def test_fixed_base_chain(self, rng):
        from repro.model.library import serial_chain

        model = serial_chain(5, seed=3)
        q = model.random_q(rng)
        assert np.allclose(
            mass_matrix_inverse(model, q) @ crba(model, q),
            np.eye(model.nv), atol=1e-8,
        )

    def test_single_link(self, rng):
        from repro.model.library import pendulum

        model = pendulum()
        q = model.random_q(rng)
        m = mass_matrix(model, q)
        minv = mass_matrix_inverse(model, q)
        assert np.isclose(m[0, 0] * minv[0, 0], 1.0, rtol=1e-10)
