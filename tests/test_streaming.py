"""Windowed (streaming) rollouts: bitwise window/full equality across
integrators and the fused jit path, mid-stream cancellation, and the
serve-layer window plumbing."""

import numpy as np
import pytest

from repro.dynamics.contact import ContactPoint
from repro.model.library import load_robot
from repro.rollout import RolloutEngine, concat_windows
from repro.serve import (
    DynamicsService,
    RolloutRequest,
    StreamCancelledError,
)


def _inputs(model, t, seed=0):
    rng = np.random.default_rng(seed)
    q0 = model.random_q(rng)
    qd0 = 0.2 * rng.normal(size=model.nv)
    controls = 0.1 * rng.normal(size=(t, model.nv))
    return q0, qd0, controls


class TestWindowedEqualsFull:
    @pytest.mark.parametrize("scheme", ["euler", "semi_implicit", "rk4"])
    def test_bitwise_equal_across_schemes(self, scheme):
        model = load_robot("iiwa")
        q0, qd0, us = _inputs(model, 17, seed=1)
        eng = RolloutEngine(scheme, engine="compiled")
        full = eng.rollout(model, q0, qd0, us, dt=1e-3)
        windows = list(eng.rollout_windows(
            model, q0, qd0, us, dt=1e-3, window=5,
        ))
        assert [(t0, t1) for t0, t1, _ in windows] == [
            (0, 5), (5, 10), (10, 15), (15, 17),
        ]
        stitched = concat_windows([r for _, _, r in windows])
        # Markovian stepping: partitioned loop, identical float ops —
        # the stream must be bitwise what the one-shot rollout was.
        assert np.array_equal(stitched.qs, full.qs)
        assert np.array_equal(stitched.qds, full.qds)
        assert np.array_equal(stitched.controls, full.controls)

    def test_bitwise_equal_fused_jit(self):
        from repro.dynamics.jit import JitEngine

        model = load_robot("iiwa")
        jit = JitEngine(backend="numpy")
        if not jit.supports_fused_rollout(model, "semi_implicit"):
            pytest.skip("jit engine cannot fuse this rollout")
        eng = RolloutEngine("semi_implicit", engine=jit)
        q0, qd0, us = _inputs(model, 16, seed=2)
        full = eng.rollout(model, q0, qd0, us, dt=1e-3)
        assert full.engine == "jit"
        windows = [r for _, _, r in eng.rollout_windows(
            model, q0, qd0, us, dt=1e-3, window=4,
        )]
        # Every eligible window takes the fused-scan path on its own.
        assert all(w.engine == "jit" for w in windows)
        stitched = concat_windows(windows)
        assert np.array_equal(stitched.qs, full.qs)
        assert np.array_equal(stitched.qds, full.qds)

    def test_contact_mask_sliced_per_window(self):
        model = load_robot("hyq")
        feet = [
            ContactPoint(model.link_index(n), np.array([0.0, 0.0, -0.35]))
            for n in ("lf_kfe", "rh_kfe")
        ]
        t = 8
        mask = np.ones((t, 2), dtype=bool)
        mask[5:] = False
        q0, qd0, us = _inputs(model, t, seed=3)
        eng = RolloutEngine("semi_implicit", engine="compiled")
        full = eng.rollout(model, q0, qd0, us, dt=1e-3, contacts=feet,
                           contact_mask=mask)
        stitched = concat_windows([r for _, _, r in eng.rollout_windows(
            model, q0, qd0, us, dt=1e-3, window=3, contacts=feet,
            contact_mask=mask,
        )])
        assert np.array_equal(stitched.qs, full.qs)
        assert np.array_equal(stitched.forces, full.forces)
        assert np.array_equal(stitched.active, full.active)

    def test_cancel_between_windows_stops_generator(self):
        model = load_robot("iiwa")
        q0, qd0, us = _inputs(model, 20, seed=4)
        eng = RolloutEngine("semi_implicit", engine="compiled")
        seen = []
        gen = eng.rollout_windows(
            model, q0, qd0, us, dt=1e-3, window=4,
            cancelled=lambda: len(seen) >= 2,
        )
        for t0, t1, _ in gen:
            seen.append((t0, t1))
        # Cancelled after the second window: the tail never simulates.
        assert seen == [(0, 4), (4, 8)]

    def test_window_validation(self):
        model = load_robot("iiwa")
        q0, qd0, us = _inputs(model, 6)
        eng = RolloutEngine("euler", engine="compiled")
        with pytest.raises(ValueError, match="window"):
            list(eng.rollout_windows(model, q0, qd0, us, dt=1e-3,
                                     window=0))


class TestServeStreaming:
    def test_windowed_submit_matches_plain(self):
        model = load_robot("iiwa")
        q0, qd0, us = _inputs(model, 14, seed=5)
        seen = []
        with DynamicsService(n_shards=1) as service:
            fut = service.submit_rollout(
                "iiwa", q0, qd0, us, dt=1e-3, scheme="rk4", window=4,
                on_window=lambda t0, t1, traj, done:
                    seen.append((t0, t1, done)),
            )
            windowed = fut.result(timeout=30)
            plain = service.submit_rollout(
                "iiwa", q0, qd0, us, dt=1e-3, scheme="rk4",
            ).result(timeout=30)
        assert windowed.windows == 4
        assert seen == [(0, 4, False), (4, 8, False), (8, 12, False),
                        (12, 14, True)]
        assert np.array_equal(windowed.value.qs, plain.value.qs)
        assert np.array_equal(windowed.value.qds, plain.value.qds)

    def test_window_is_part_of_coalescing_key(self):
        model = load_robot("iiwa")
        q0, qd0, us = _inputs(model, 6)
        a = RolloutRequest(robot="iiwa", q0=q0, qd0=qd0, controls=us,
                           dt=1e-3, scheme="semi_implicit")
        b = RolloutRequest(robot="iiwa", q0=q0, qd0=qd0, controls=us,
                           dt=1e-3, scheme="semi_implicit", window=3)
        assert a.key != b.key

    def test_mid_stream_cancel_frees_capacity(self):
        model = load_robot("iiwa")
        q0, qd0, us = _inputs(model, 64, seed=6)
        with DynamicsService(n_shards=1) as service:
            fut = service.submit_rollout(
                "iiwa", q0, qd0, us, dt=1e-3, window=4,
                on_window=lambda t0, t1, traj, done: fut.cancel_stream(),
            )
            with pytest.raises(StreamCancelledError,
                               match=r"cancelled after 4/64"):
                fut.result(timeout=30)
            # The shard is free again: a follow-up request is served.
            after = service.submit_rollout(
                "iiwa", q0, qd0, us[:8], dt=1e-3,
            ).result(timeout=30)
            assert after.horizon == 8
            assert service.stats()["accepted"] == 2

    def test_on_window_exception_does_not_fail_request(self):
        model = load_robot("iiwa")
        q0, qd0, us = _inputs(model, 8, seed=7)

        def bad_callback(t0, t1, traj, done):
            raise RuntimeError("client bug")

        with DynamicsService(n_shards=1) as service:
            result = service.submit_rollout(
                "iiwa", q0, qd0, us, dt=1e-3, window=4,
                on_window=bad_callback,
            ).result(timeout=30)
        assert result.windows == 2
        assert result.value.qs.shape[0] == 9

    def test_window_rejects_sensitivities(self):
        model = load_robot("iiwa")
        q0, qd0, us = _inputs(model, 6)
        with DynamicsService(n_shards=1) as service:
            with pytest.raises(ValueError, match="sensitivity"):
                service.submit_rollout(
                    "iiwa", q0, qd0, us, dt=1e-3, window=3,
                    sensitivities=True,
                )
            with pytest.raises(ValueError, match="window"):
                service.submit_rollout(
                    "iiwa", q0, qd0, us, dt=1e-3, window=0,
                )
