"""Tests for CRBA and ABA and their mutual consistency with RNEA."""

import numpy as np

from repro.dynamics.aba import aba
from repro.dynamics.crba import crba
from repro.dynamics.rnea import rnea


class TestCrba:
    def test_symmetric(self, any_robot, rng):
        m = crba(any_robot, any_robot.random_q(rng))
        assert np.allclose(m, m.T, atol=1e-10)

    def test_positive_definite(self, any_robot, rng):
        m = crba(any_robot, any_robot.random_q(rng))
        assert np.all(np.linalg.eigvalsh(m) > 0)

    def test_branch_induced_sparsity(self, rng):
        """M[i, j] == 0 when joints i and j are on different branches
        (Fig 5): the structure SAPs exploit."""
        from repro.model.library import hyq

        model = hyq()
        q = model.random_q(rng)
        m = crba(model, q)
        lf = model.dof_slice(model.link_index("lf_kfe"))
        rh = model.dof_slice(model.link_index("rh_haa"))
        assert np.allclose(m[lf, rh], 0.0)

    def test_configuration_dependence(self, rng):
        from repro.model.library import iiwa

        model = iiwa()
        m1 = crba(model, model.random_q(rng))
        m2 = crba(model, model.random_q(rng))
        assert not np.allclose(m1, m2)

    def test_diagonal_positive(self, any_robot, rng):
        m = crba(any_robot, any_robot.random_q(rng))
        assert np.all(np.diag(m) > 0)


class TestAba:
    def test_inverts_rnea(self, any_robot, rng):
        """FD(q, qd, ID(q, qd, qdd)) == qdd for random states."""
        q, qd = any_robot.random_state(rng)
        qdd = rng.normal(size=any_robot.nv)
        tau = rnea(any_robot, q, qd, qdd)
        assert np.allclose(aba(any_robot, q, qd, tau), qdd, atol=1e-8)

    def test_matches_dense_solve(self, paper_robot, rng):
        q, qd = paper_robot.random_state(rng)
        tau = rng.normal(size=paper_robot.nv)
        c = rnea(paper_robot, q, qd, np.zeros(paper_robot.nv))
        qdd_dense = np.linalg.solve(crba(paper_robot, q), tau - c)
        assert np.allclose(aba(paper_robot, q, qd, tau), qdd_dense, atol=1e-8)

    def test_with_external_forces(self, rng):
        from repro.model.library import hyq

        model = hyq()
        q, qd = model.random_state(rng)
        qdd = rng.normal(size=model.nv)
        f_ext = {model.link_index("lf_kfe"): rng.normal(size=6)}
        tau = rnea(model, q, qd, qdd, f_ext=f_ext)
        assert np.allclose(aba(model, q, qd, tau, f_ext=f_ext), qdd, atol=1e-8)

    def test_free_fall_of_floating_base(self, rng):
        """An unactuated floating body in gravity: linear acceleration has
        magnitude g."""
        from repro.model.joints import FloatingJoint
        from repro.model.robot import GRAVITY, RobotBuilder
        from repro.spatial.random import random_inertia

        builder = RobotBuilder("freebody")
        builder.add_link("body", None, FloatingJoint(), random_inertia(rng))
        model = builder.build()
        q = model.random_q(rng)
        qdd = aba(model, q, np.zeros(6), np.zeros(6))
        # Acceleration is expressed in the body frame; its norm is g and the
        # angular part vanishes.
        assert np.allclose(qdd[:3], 0.0, atol=1e-9)
        assert np.isclose(np.linalg.norm(qdd[3:]), GRAVITY, rtol=1e-9)
