"""Tests for repro.obs: tracer, kernel profiler, hooks, telemetry, and
the end-to-end trace path through the engines and the serve runtime."""

import json
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.dynamics import BatchStates, batch_evaluate
from repro.dynamics.functions import RBDFunction
from repro.model.library import load_robot
from repro.obs import KernelProfiler, Telemetry, Tracer
from repro.obs import hooks as obs_hooks
from repro.rollout import RolloutEngine
from repro.serve import BatchPolicy, DynamicsService, MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_hooks():
    """Every test starts and ends with instrumentation uninstalled."""
    obs.uninstall()
    yield
    obs.uninstall()


# ======================================================================
# Tracer
# ======================================================================

class TestTracer:
    def test_spans_nest_within_a_thread(self):
        tracer = Tracer()
        with tracer.span("outer", trace_id=tracer.new_trace_id()) as outer:
            with tracer.span("inner"):
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        # The inner span inherits the enclosing trace ID.
        assert spans["inner"].trace_id == outer.trace_id
        assert spans["inner"].start_s >= spans["outer"].start_s
        assert spans["inner"].end_s <= spans["outer"].end_s

    def test_trace_ids_unique(self):
        tracer = Tracer()
        ids = {tracer.new_trace_id() for _ in range(100)}
        assert len(ids) == 100

    def test_retroactive_record(self):
        tracer = Tracer()
        t0 = time.perf_counter() - 0.5
        span = tracer.record("queue", t0, 0.25, trace_id="t1")
        assert span.start_s == t0
        assert span.duration_s == pytest.approx(0.25)
        assert [s.name for s in tracer.trace("t1")] == ["queue"]

    def test_trace_matches_membership_annotation(self):
        tracer = Tracer()
        tracer.record("batch", 0.0, 1.0, trace_id="t1",
                      args={"trace_ids": ["t1", "t2"]})
        tracer.record("other", 0.0, 1.0, trace_id="t3")
        assert [s.name for s in tracer.trace("t2")] == ["batch"]

    def test_error_annotated_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kaput")
        (span,) = tracer.spans()
        assert "kaput" in span.args["error"]

    def test_ring_buffer_drops_and_counts(self):
        tracer = Tracer(capacity=4)
        for k in range(10):
            tracer.record(f"s{k}", 0.0, 0.1)
        assert len(tracer.spans()) == 4
        assert tracer.dropped == 6
        assert tracer.summary()["dropped"] == 6
        tracer.clear()
        assert tracer.spans() == [] and tracer.dropped == 0

    def test_chrome_trace_format(self, tmp_path):
        tracer = Tracer()
        with tracer.span("work", trace_id="t1", args={"batch": 3}):
            pass
        path = tracer.export_chrome(tmp_path / "trace.json")
        events = json.loads(path.read_text())
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert meta and meta[0]["name"] == "thread_name"
        (ev,) = complete
        assert ev["name"] == "work"
        assert ev["ts"] >= 0 and ev["dur"] >= 0
        assert ev["args"] == {"batch": 3, "trace_id": "t1"}

    def test_summary_aggregates_by_name(self):
        tracer = Tracer()
        tracer.record("a", 0.0, 0.2)
        tracer.record("a", 0.0, 0.4)
        tracer.record("b", 0.0, 0.1)
        summary = tracer.summary()
        assert summary["by_name"]["a"]["count"] == 2
        assert summary["by_name"]["a"]["total_s"] == pytest.approx(0.6)
        assert summary["by_name"]["a"]["max_s"] == pytest.approx(0.4)
        # Sorted by descending total time.
        assert list(summary["by_name"]) == ["a", "b"]
        assert "a" in obs.format_summary(summary)

    def test_concurrent_spans_nest_per_thread(self):
        """N threads hammering one tracer: every span lands, and nesting
        never crosses threads."""
        tracer = Tracer(capacity=100_000)
        n_threads, per_thread = 8, 200
        barrier = threading.Barrier(n_threads)

        def work(tid):
            barrier.wait()
            for k in range(per_thread):
                with tracer.span(f"outer-{tid}") as outer:
                    with tracer.span(f"inner-{tid}"):
                        pass
                    assert outer.span.thread_id == threading.get_ident()

        threads = [threading.Thread(target=work, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.spans()
        assert len(spans) == n_threads * per_thread * 2
        assert tracer.dropped == 0
        by_id = {s.span_id: s for s in spans}
        for s in spans:
            if s.parent_id is not None:
                parent = by_id[s.parent_id]
                assert parent.thread_id == s.thread_id
                assert s.name == f"inner-{parent.name.split('-')[1]}"


# ======================================================================
# KernelProfiler + hooks
# ======================================================================

class TestProfiler:
    def test_record_and_breakdown(self):
        prof = KernelProfiler()
        prof.record("iiwa", "aba", 0.2, rows=64)
        prof.record("iiwa", "aba", 0.4, rows=64)
        prof.record("iiwa", "transforms", 0.1, rows=64)
        down = prof.breakdown()
        assert list(down) == [("iiwa", "aba"), ("iiwa", "transforms")]
        stat = down[("iiwa", "aba")]
        assert stat["calls"] == 2
        assert stat["total_s"] == pytest.approx(0.6)
        assert stat["max_s"] == pytest.approx(0.4)
        assert stat["rows"] == 128
        assert "aba" in obs.format_breakdown(down)

    def test_snapshot_merge_roundtrip(self):
        a = KernelProfiler(per_level=True)
        a.record("hyq", "rnea", 0.3, rows=8)
        a.record_level("hyq", "rnea", 0, 0.1)
        a.record_level("hyq", "rnea", 1, 0.2)
        b = KernelProfiler()
        b.record("hyq", "rnea", 0.5, rows=4)
        b.merge(a.snapshot())
        stat = b.breakdown()[("hyq", "rnea")]
        assert stat["calls"] == 2
        assert stat["total_s"] == pytest.approx(0.8)
        assert stat["rows"] == 12
        assert stat["levels"][1]["total_s"] == pytest.approx(0.2)

    def test_hooks_disabled_are_noops(self):
        assert obs_hooks.kernel_begin() is None
        obs_hooks.kernel_end(None, "r", "k")        # must not raise
        assert obs_hooks.level_begin() is None
        obs_hooks.level_end(None, "r", "k", 0)

    def test_profiled_context_restores_previous_sinks(self):
        outer = KernelProfiler()
        obs.install(profiler=outer)
        with obs.profiled() as inner:
            assert obs_hooks.active_profiler() is inner
        assert obs_hooks.active_profiler() is outer
        obs.uninstall()
        assert not obs_hooks.enabled

    def test_concurrent_recording_balances(self):
        """N threads x M records: totals must balance exactly."""
        prof = KernelProfiler(per_level=True)
        n_threads, per_thread = 8, 500
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for _ in range(per_thread):
                prof.record("r", "k", 1e-6, rows=2)
                prof.record_level("r", "k", 3, 1e-6)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stat = prof.breakdown()[("r", "k")]
        n = n_threads * per_thread
        assert stat["calls"] == n
        assert stat["rows"] == 2 * n
        assert stat["total_s"] == pytest.approx(n * 1e-6)
        assert stat["levels"][3]["calls"] == n


class TestEngineInstrumentation:
    def test_compiled_engine_breakdown(self):
        model = load_robot("hyq")
        states = BatchStates.random(model, 16, seed=0)
        u = np.random.default_rng(1).normal(size=(16, model.nv))
        with obs.profiled(KernelProfiler(per_level=True)) as prof:
            batch_evaluate(model, RBDFunction.FD, states, u,
                           engine="compiled")
        down = prof.breakdown()
        kernels = {k for (_, k) in down}
        assert {"transforms", "aba", "dispatch.FD[compiled]"} <= kernels
        aba = down[("hyq", "aba")]
        assert aba["rows"] == 16
        # hyq's plan has 4 levels; per-level mode recorded each sweep.
        assert len(aba["levels"]) >= 2

    def test_instrumentation_does_not_change_results(self):
        model = load_robot("iiwa")
        states = BatchStates.random(model, 8, seed=3)
        u = np.random.default_rng(4).normal(size=(8, model.nv))
        plain = batch_evaluate(model, RBDFunction.FD, states, u,
                               engine="compiled")
        with obs.profiled(tracer=Tracer()):
            traced = batch_evaluate(model, RBDFunction.FD, states, u,
                                    engine="compiled")
        np.testing.assert_allclose(np.asarray(traced), np.asarray(plain))

    def test_rollout_step_spans(self):
        model = load_robot("iiwa")
        rng = np.random.default_rng(0)
        tracer = Tracer()
        with obs.profiled(tracer=tracer) as prof:
            RolloutEngine("semi_implicit", engine="compiled").rollout(
                model, rng.normal(size=(4, model.nv)) * 0.1,
                np.zeros((4, model.nv)),
                rng.normal(size=(4, 6, model.nv)) * 0.05, dt=1e-3,
            )
        down = prof.breakdown()
        step = down[("iiwa", "rollout.step[semi_implicit]")]
        assert step["calls"] == 6
        outer = down[("iiwa", "rollout[semi_implicit]")]
        assert outer["calls"] == 1
        assert outer["rows"] == 4 * 6
        names = [s.name for s in tracer.spans()]
        assert names.count("iiwa.rollout.step[semi_implicit]") == 6

    def test_process_engine_merges_worker_profiles(self):
        from repro.dynamics.process import ProcessEngine

        model = load_robot("iiwa")
        states = BatchStates.random(model, 6, seed=0)
        u = np.random.default_rng(1).normal(size=(6, model.nv))
        engine = ProcessEngine(n_workers=2, min_chunk=1)
        try:
            with obs.profiled(KernelProfiler()) as prof:
                batch_evaluate(model, RBDFunction.FD, states, u,
                               engine=engine)
        finally:
            engine.shutdown()
        down = prof.breakdown()
        # Worker-side kernel timings shipped back and merged: the aba
        # sweep happened in the workers, not this process.
        assert ("iiwa", "aba") in down
        assert down[("iiwa", "aba")]["rows"] == 6


# ======================================================================
# Telemetry
# ======================================================================

class TestTelemetry:
    def test_counter_gauge_prometheus(self):
        t = Telemetry()
        t.counter("hits_total", "Hits").inc(3)
        t.gauge("depth", "Queue depth").set(1.5)
        text = t.prometheus()
        assert "# TYPE repro_hits_total counter" in text
        assert "repro_hits_total 3" in text
        assert "repro_depth 1.5" in text

    def test_labels_make_distinct_series(self):
        t = Telemetry()
        t.counter("batches_total", engine="compiled").inc(2)
        t.counter("batches_total", engine="loop").inc(5)
        text = t.prometheus()
        assert 'repro_batches_total{engine="compiled"} 2' in text
        assert 'repro_batches_total{engine="loop"} 5' in text
        # Same (name, labels) returns the same underlying metric.
        assert t.counter("batches_total", engine="loop").value == 5

    def test_histogram_cumulative_buckets(self):
        t = Telemetry()
        h = t.histogram("sizes", buckets=(1, 8, 64))
        for v in (1, 2, 9, 100):
            h.observe(v)
        text = t.prometheus()
        assert 'repro_sizes_bucket{le="1"} 1' in text
        assert 'repro_sizes_bucket{le="8"} 2' in text
        assert 'repro_sizes_bucket{le="64"} 3' in text
        assert 'repro_sizes_bucket{le="+Inf"} 4' in text
        assert "repro_sizes_count 4" in text

    def test_summary_quantiles(self):
        t = Telemetry()
        t.summary("lat_seconds").set({0.5: 0.01, 0.99: 0.05}, 100, 1.25)
        text = t.prometheus()
        assert 'repro_lat_seconds{quantile="0.5"} 0.01' in text
        assert "repro_lat_seconds_sum 1.25" in text
        assert "repro_lat_seconds_count 100" in text

    def test_kind_conflict_and_bad_name_rejected(self):
        t = Telemetry()
        t.counter("x_total")
        with pytest.raises(ValueError):
            t.gauge("x_total")
        with pytest.raises(ValueError):
            t.counter("bad name")
        with pytest.raises(ValueError):
            t.counter("neg_total").inc(-1)

    def test_json_exposition(self):
        t = Telemetry()
        t.counter("hits_total", "Hits", engine="compiled").inc(7)
        doc = json.loads(t.json_text())
        sample = doc["hits_total"]["samples"][0]
        assert sample == {"labels": {"engine": "compiled"}, "value": 7.0}


# ======================================================================
# MetricsRegistry: locked snapshot + telemetry projection
# ======================================================================

class TestMetricsRegistry:
    def test_snapshot_consistent_under_concurrency(self):
        """Writers on N threads; snapshot() must always read balanced
        counters (completed + failed == total recorded so far is not
        observable mid-write, but the final state must balance and no
        read may crash or tear)."""
        registry = MetricsRegistry()
        n_threads, per_thread = 8, 300
        barrier = threading.Barrier(n_threads + 1)
        stop = threading.Event()

        def writer():
            barrier.wait()
            for k in range(per_thread):
                registry.record_request(1e-3, 1e-6)
                registry.record_batch(2, 100.0, engine="compiled",
                                      backend="numpy", shard=0, wall_s=1e-4)
                registry.record_rollout(16, 2e-3)
                if k % 50 == 0:
                    registry.record_failure()

        def reader():
            barrier.wait()
            while not stop.is_set():
                snap = registry.snapshot()
                assert snap["completed"] >= 0
                assert snap["mean_batch_occupancy"] in (0.0, 2.0)

        threads = [threading.Thread(target=writer)
                   for _ in range(n_threads)]
        rd = threading.Thread(target=reader)
        for t in threads + [rd]:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        rd.join()
        snap = registry.snapshot()
        n = n_threads * per_thread
        assert snap["completed"] == n
        assert snap["failed"] == n_threads * len(range(0, per_thread, 50))
        assert snap["rollouts_completed"] == n
        assert snap["rollout_steps_total"] == 16 * n
        assert snap["engine_requests"]["compiled"] == 2 * n

    def test_telemetry_projection(self):
        registry = MetricsRegistry()
        for _ in range(10):
            registry.record_request(2e-3, 1e-6)
        registry.record_batch(10, 500.0, engine="compiled",
                              backend="numpy", shard=1, wall_s=1e-3)
        registry.record_rollout(32, 5e-3)
        t = registry.telemetry()
        text = t.prometheus()
        assert "repro_requests_completed_total 10" in text
        assert 'repro_serve_requests_total{engine="compiled"} 10' in text
        assert "repro_rollout_steps_total 32" in text
        assert "repro_request_latency_seconds_count 10" in text
        # The summary _sum is the exact stream sum, not a quantile.
        assert "repro_request_latency_seconds_sum 0.02" in text
        assert 'repro_batch_occupancy_bucket{le="10"} 1' in text
        doc = t.to_json()
        assert doc["requests_completed_total"]["samples"][0]["value"] == 10


# ======================================================================
# Serve integration: end-to-end traces, placement log, rollout f_ext
# ======================================================================

def _service(tracer=None, **kwargs):
    kwargs.setdefault("policy", BatchPolicy(max_batch=8, max_wait_s=1e-3))
    kwargs.setdefault("n_shards", 2)
    return DynamicsService(tracer=tracer, **kwargs)


class TestServeTracing:
    def test_single_request_trace_chain(self):
        """One urgent request is followable enqueue -> batch -> shard ->
        kernels under a single trace ID."""
        model = load_robot("iiwa")
        tracer = Tracer()
        obs.install(tracer=tracer)
        with _service(tracer=tracer) as service:
            future = service.submit(
                "iiwa", RBDFunction.FD, np.zeros(model.nv),
                np.zeros(model.nv), np.zeros(model.nv), urgent=True,
            )
            result = future.result(timeout=30.0)
        assert result.batch_size == 1
        requests = [s for s in tracer.spans() if s.name == "serve.queue"]
        assert len(requests) == 1
        trace_id = requests[0].trace_id
        chain = tracer.trace(trace_id)
        names = [s.name for s in chain]
        assert "serve.queue" in names
        assert any(n.startswith("serve.execute iiwa/FD") for n in names)
        assert "iiwa.aba" in names          # kernel level reached
        # Kernel spans nest under the execute span.
        execute = next(s for s in chain if s.name.startswith("serve.execute"))
        kernel = next(s for s in chain if s.name == "iiwa.aba")
        assert kernel.parent_id == execute.span_id
        assert execute.args["shard"] == requests[0].args["shard"]

    def test_batched_requests_share_execute_span(self):
        model = load_robot("iiwa")
        tracer = Tracer()
        with _service(tracer=tracer) as service:
            futures = [
                service.submit("iiwa", RBDFunction.FD,
                               np.zeros(model.nv), np.zeros(model.nv),
                               np.zeros(model.nv))
                for _ in range(8)
            ]
            service.flush()
            for f in futures:
                f.result(timeout=30.0)
        queue_spans = [s for s in tracer.spans() if s.name == "serve.queue"]
        assert len(queue_spans) == 8
        for s in queue_spans:
            chain = tracer.trace(s.trace_id)
            assert any(n.name.startswith("serve.execute") for n in chain)

    def test_rollout_trace_reaches_step_kernels(self):
        model = load_robot("iiwa")
        tracer = Tracer()
        obs.install(tracer=tracer)
        with _service(tracer=tracer) as service:
            future = service.submit_rollout(
                "iiwa", np.zeros(model.nv), np.zeros(model.nv),
                np.zeros((4, model.nv)), dt=1e-3, urgent=True,
            )
            future.result(timeout=30.0)
        queue = next(s for s in tracer.spans() if s.name == "serve.queue")
        names = [s.name for s in tracer.trace(queue.trace_id)]
        assert any("serve.execute iiwa/rollout" in n for n in names)
        assert "iiwa.rollout.step[semi_implicit]" in names

    def test_untraced_service_records_nothing(self):
        model = load_robot("iiwa")
        with _service() as service:
            future = service.submit("iiwa", RBDFunction.FD,
                                    np.zeros(model.nv), np.zeros(model.nv),
                                    np.zeros(model.nv), urgent=True)
            result = future.result(timeout=30.0)
        assert result.robot == "iiwa"


class TestPlacementLog:
    def test_least_loaded_records_scoreboard(self):
        model = load_robot("iiwa")
        with _service(shard_policy="least_loaded") as service:
            futures = [
                service.submit("iiwa", RBDFunction.FD,
                               np.zeros(model.nv), np.zeros(model.nv),
                               np.zeros(model.nv), urgent=True)
                for _ in range(4)
            ]
            for f in futures:
                f.result(timeout=30.0)
            events = service.pool.placement_events()
        assert len(events) == 4
        assert [e["seq"] for e in events] == sorted(e["seq"] for e in events)
        for event in events:
            assert event["policy"] == "least_loaded"
            assert event["n_requests"] == 1
            assert len(event["scores"]) == 2      # full scoreboard
            assert len(event["weights"]) == 2
            # The chosen shard minimizes the recorded scores.
            best = min(range(2), key=lambda i: tuple(event["scores"][i]))
            assert event["shard"] == best
        assert service.stats()["placement_events"] == 4

    def test_round_robin_has_no_scores(self):
        model = load_robot("iiwa")
        with _service(shard_policy="round_robin") as service:
            service.submit("iiwa", RBDFunction.FD, np.zeros(model.nv),
                           np.zeros(model.nv), np.zeros(model.nv),
                           urgent=True).result(timeout=30.0)
            (event,) = service.pool.placement_events()
        assert event["scores"] is None

    def test_log_capacity_bounded(self):
        from repro.serve import ShardPool

        pool = ShardPool(1, placement_log_capacity=3)
        for _ in range(5):
            pool.dispatch(1, lambda shard: 0.0).result(timeout=10.0)
        pool.shutdown()
        events = pool.placement_events()
        assert len(events) == 3
        assert [e["seq"] for e in events] == [2, 3, 4]


class TestRolloutFext:
    def test_serve_rollout_f_ext_matches_direct(self):
        model = load_robot("iiwa")
        rng = np.random.default_rng(7)
        q0 = rng.normal(size=model.nv) * 0.1
        qd0 = np.zeros(model.nv)
        controls = rng.normal(size=(5, model.nv)) * 0.05
        f_ext = {model.nb - 1: np.array([0.0, 0.2, 0.0, 0.0, 0.0, -3.0])}
        with _service() as service:
            result = service.submit_rollout(
                "iiwa", q0, qd0, controls, dt=1e-3, f_ext=f_ext,
                urgent=True,
            ).result(timeout=30.0)
        direct = RolloutEngine("semi_implicit", engine="compiled").rollout(
            model, q0, qd0, controls, dt=1e-3, f_ext=f_ext,
        )
        np.testing.assert_allclose(result.value.qs, direct.task(0).qs,
                                   rtol=1e-10, atol=1e-12)
        # And the forces actually changed the trajectory.
        free = RolloutEngine("semi_implicit", engine="compiled").rollout(
            model, q0, qd0, controls, dt=1e-3,
        )
        assert not np.allclose(result.value.qs, free.task(0).qs)

    def test_mixed_f_ext_batch_coalesces(self):
        """Force-free and force-carrying rollouts share one slab."""
        model = load_robot("iiwa")
        rng = np.random.default_rng(8)
        controls = rng.normal(size=(4, model.nv)) * 0.05
        f_ext = {model.nb - 1: np.array([0.3, 0.2, 0.0, 1.0, 0.0, -2.0])}
        policy = BatchPolicy(max_batch=4, max_wait_s=0.2)
        with DynamicsService(policy=policy, n_shards=1) as service:
            loaded = service.submit_rollout(
                "iiwa", np.zeros(model.nv), np.zeros(model.nv), controls,
                dt=1e-3, f_ext=f_ext,
            )
            free = service.submit_rollout(
                "iiwa", np.zeros(model.nv), np.zeros(model.nv), controls,
                dt=1e-3,
            )
            service.flush()
            loaded_r = loaded.result(timeout=30.0)
            free_r = free.result(timeout=30.0)
        assert loaded_r.batch_size == 2 and free_r.batch_size == 2
        direct_free = RolloutEngine(
            "semi_implicit", engine="compiled"
        ).rollout(model, np.zeros(model.nv), np.zeros(model.nv), controls,
                  dt=1e-3)
        np.testing.assert_allclose(free_r.value.qs, direct_free.task(0).qs,
                                   rtol=1e-10, atol=1e-12)
        assert not np.allclose(loaded_r.value.qs, free_r.value.qs)

    def test_rollout_f_ext_validated(self):
        model = load_robot("iiwa")
        with _service() as service:
            with pytest.raises(ValueError, match="out of range"):
                service.submit_rollout(
                    "iiwa", np.zeros(model.nv), np.zeros(model.nv),
                    np.zeros((3, model.nv)), dt=1e-3,
                    f_ext={model.nb + 5: np.zeros(6)},
                )
            with pytest.raises(ValueError, match="shape"):
                service.submit_rollout(
                    "iiwa", np.zeros(model.nv), np.zeros(model.nv),
                    np.zeros((3, model.nv)), dt=1e-3,
                    f_ext={0: np.zeros(3)},
                )


class TestServiceTelemetry:
    def test_service_telemetry_unifies_layers(self):
        model = load_robot("iiwa")
        with _service(shard_policy="least_loaded") as service:
            futures = [
                service.submit("iiwa", RBDFunction.FD,
                               np.zeros(model.nv), np.zeros(model.nv),
                               np.zeros(model.nv), urgent=True)
                for _ in range(3)
            ]
            for f in futures:
                f.result(timeout=30.0)
            text = service.telemetry().prometheus()
        assert "repro_requests_completed_total 3" in text
        assert "repro_serve_accepted_total 3" in text
        assert "repro_serve_urgent_total 3" in text
        assert 'repro_shard_weight{shard="0"}' in text
        assert "repro_shard_placement_events_total 3" in text
        assert "repro_cache_misses_total" in text


class TestTraceCLI:
    def test_trace_cli_smoke(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "TRACE_iiwa.json"
        assert main(["trace", "iiwa", "--requests", "4", "--horizon", "3",
                     "--out", str(out), "--prometheus"]) == 0
        printed = capsys.readouterr().out
        assert "spans" in printed
        assert "repro_requests_completed_total" in printed
        events = json.loads(out.read_text())
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "serve.queue" in names
        assert any(n.startswith("serve.execute") for n in names)
        assert any(n.startswith("iiwa.") for n in names)
        # Hooks are restored after the CLI run.
        assert not obs_hooks.enabled
