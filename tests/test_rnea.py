"""Tests for RNEA (Algorithm 1): analytic cases, invariants, f_ext."""

import numpy as np

from repro.dynamics.crba import crba
from repro.dynamics.kinematics import kinetic_energy, potential_energy
from repro.dynamics.rnea import bias_forces, gravity_torques, rnea
from repro.model.library import double_pendulum, iiwa, pendulum
from repro.model.robot import GRAVITY


class TestPendulumAnalytic:
    """Closed-form checks against the textbook pendulum."""

    def test_gravity_torque(self):
        length, mass = 1.0, 2.0
        model = pendulum(length=length, mass=mass)
        # Rod pointing up (+z) at q=0, rotating about y; at angle q the com
        # is at r = L/2 * [sin q, 0, cos q] so gravity exerts torque
        # +m g (L/2) sin q about y (pulling the rod further down); holding
        # still requires the actuator to supply the opposite torque.
        for angle in (0.0, 0.3, 1.2, -0.8):
            tau = rnea(model, np.array([angle]), np.zeros(1), np.zeros(1))
            expected = -mass * GRAVITY * (length / 2.0) * np.sin(angle)
            assert np.isclose(tau[0], expected, rtol=1e-9), angle

    def test_inertia_about_pivot(self):
        length, mass = 1.0, 3.0
        model = pendulum(length=length, mass=mass)
        tau = rnea(model, np.zeros(1), np.zeros(1), np.ones(1),
                   apply_gravity=False)
        radius = 0.05
        inertia_pivot = (
            mass * (3 * radius**2 + length**2) / 12.0
            + mass * (length / 2.0) ** 2
        )
        assert np.isclose(tau[0], inertia_pivot, rtol=1e-9)

    def test_equation_of_motion_form(self, rng):
        # tau = M qdd + C for fixed (q, qd): linearity in qdd.
        model = double_pendulum()
        q, qd = model.random_state(rng)
        c = rnea(model, q, qd, np.zeros(2))
        m = crba(model, q)
        for _ in range(5):
            qdd = rng.normal(size=2)
            assert np.allclose(rnea(model, q, qd, qdd), m @ qdd + c, atol=1e-9)


class TestInvariants:
    def test_linear_in_qdd(self, paper_robot, rng):
        q, qd = paper_robot.random_state(rng)
        qdd1 = rng.normal(size=paper_robot.nv)
        qdd2 = rng.normal(size=paper_robot.nv)
        c = rnea(paper_robot, q, qd, np.zeros(paper_robot.nv))
        t1 = rnea(paper_robot, q, qd, qdd1) - c
        t2 = rnea(paper_robot, q, qd, qdd2) - c
        t12 = rnea(paper_robot, q, qd, qdd1 + qdd2) - c
        assert np.allclose(t12, t1 + t2, atol=1e-8)

    def test_mass_matrix_by_columns(self, paper_robot, rng):
        """M e_k == ID(q, 0, e_k) without gravity: the classic CRBA check."""
        q = paper_robot.random_q(rng)
        m = crba(paper_robot, q)
        zero = np.zeros(paper_robot.nv)
        for k in range(0, paper_robot.nv, 3):
            e = np.zeros(paper_robot.nv)
            e[k] = 1.0
            col = rnea(paper_robot, q, zero, e, apply_gravity=False)
            assert np.allclose(col, m[:, k], atol=1e-9)

    def test_power_balance(self, rng):
        """d/dt(KE + PE) == qd . tau  (no external forces)."""
        model = iiwa()
        q, qd = model.random_state(rng)
        qdd = rng.normal(size=model.nv)
        tau = rnea(model, q, qd, qdd)
        eps = 1e-6

        def energy(t):
            q_t = model.integrate(q, t * qd)
            qd_t = qd + t * qdd
            return kinetic_energy(model, q_t, qd_t) + potential_energy(model, q_t)

        dedt = (energy(eps) - energy(-eps)) / (2 * eps)
        assert np.isclose(dedt, qd @ tau, rtol=1e-4, atol=1e-6)

    def test_gravity_torques_hold_still(self, paper_robot, rng):
        from repro.dynamics.functions import forward_dynamics

        q = paper_robot.random_q(rng)
        tau = gravity_torques(paper_robot, q)
        qdd = forward_dynamics(paper_robot, q, np.zeros(paper_robot.nv), tau)
        assert np.allclose(qdd, 0.0, atol=1e-8)

    def test_bias_forces_equals_zero_qdd(self, paper_robot, rng):
        q, qd = paper_robot.random_state(rng)
        assert np.allclose(
            bias_forces(paper_robot, q, qd),
            rnea(paper_robot, q, qd, np.zeros(paper_robot.nv)),
        )


class TestExternalForces:
    def test_fext_linear(self, rng):
        model = iiwa()
        q, qd = model.random_state(rng)
        qdd = rng.normal(size=model.nv)
        f = rng.normal(size=6)
        tau0 = rnea(model, q, qd, qdd)
        tau1 = rnea(model, q, qd, qdd, f_ext={6: f})
        tau2 = rnea(model, q, qd, qdd, f_ext={6: 2 * f})
        assert np.allclose(tau2 - tau0, 2 * (tau1 - tau0), atol=1e-9)

    def test_fext_on_leaf_affects_only_supporting_joints(self, rng):
        from repro.model.library import hyq

        model = hyq()
        q, qd = model.random_state(rng)
        qdd = rng.normal(size=model.nv)
        leg_tip = model.link_index("lf_kfe")
        tau0 = rnea(model, q, qd, qdd)
        tau1 = rnea(model, q, qd, qdd, f_ext={leg_tip: rng.normal(size=6)})
        diff = tau1 - tau0
        support = set(model.supporting_dofs(leg_tip))
        for k in range(model.nv):
            if k not in support:
                assert np.isclose(diff[k], 0.0, atol=1e-12), k

    def test_fext_cancels_gravity_on_pendulum(self):
        # Support the pendulum with an upward force at its com: no torque
        # needed to hold still.
        length, mass = 1.0, 2.0
        model = pendulum(length=length, mass=mass)
        q = np.array([0.4])
        # Link-frame external force (couple; force) at the link origin that
        # exactly opposes gravity on the com.
        from repro.dynamics.kinematics import forward_kinematics

        fk = forward_kinematics(model, q)
        rot_world = fk.link_rotation(0)
        lift_world = np.array([0.0, 0.0, mass * GRAVITY])
        lift_local = rot_world.T @ lift_world
        com = np.array([0.0, 0.0, length / 2.0])
        f_ext = {0: np.concatenate([np.cross(com, lift_local), lift_local])}
        tau = rnea(model, q, np.zeros(1), np.zeros(1), f_ext=f_ext)
        assert np.isclose(tau[0], 0.0, atol=1e-9)


class TestInternals:
    def test_velocities_match_kinematics(self, paper_robot, rng):
        from repro.dynamics.kinematics import forward_kinematics

        q, qd = paper_robot.random_state(rng)
        _, internals = rnea(
            paper_robot, q, qd, np.zeros(paper_robot.nv), return_internals=True
        )
        fk = forward_kinematics(paper_robot, q, qd)
        for v_rnea, v_fk in zip(internals.velocities, fk.velocities):
            assert np.allclose(v_rnea, v_fk, atol=1e-10)

    def test_accumulated_forces_projection(self, paper_robot, rng):
        """tau_i == S_i^T f_i with accumulated forces."""
        q, qd = paper_robot.random_state(rng)
        qdd = rng.normal(size=paper_robot.nv)
        tau, internals = rnea(paper_robot, q, qd, qdd, return_internals=True)
        for i in range(paper_robot.nb):
            s = paper_robot.joint(i).motion_subspace()
            sl = paper_robot.dof_slice(i)
            assert np.allclose(tau[sl], s.T @ internals.forces[i], atol=1e-10)
