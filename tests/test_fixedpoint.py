"""Tests for the fixed-point substrate and the float-trick reciprocal."""

import numpy as np
import pytest

from repro.core.fixedpoint import (
    FixedPointFormat,
    fixed_reciprocal,
    float_reciprocal_seed,
    quantize_request,
)
from repro.errors import ConfigurationError


class TestFormat:
    def test_resolution(self):
        fmt = FixedPointFormat(16, 20)
        assert fmt.resolution == 2**-20

    def test_quantize_error_bound(self, rng):
        fmt = FixedPointFormat(16, 20)
        x = rng.uniform(-100, 100, size=1000)
        err = np.abs(fmt.quantize(x) - x)
        assert err.max() <= fmt.quantization_error_bound() + 1e-12

    def test_quantize_idempotent(self, rng):
        fmt = FixedPointFormat(8, 12)
        x = fmt.quantize(rng.normal(size=50))
        assert np.allclose(fmt.quantize(x), x)

    def test_saturation(self):
        fmt = FixedPointFormat(4, 4)
        assert fmt.quantize(1e9) == fmt.max_value
        assert fmt.quantize(-1e9) == fmt.min_value

    def test_scalar_returns_scalar(self):
        fmt = FixedPointFormat(8, 8)
        assert isinstance(fmt.quantize(0.3), float)

    def test_too_wide_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedPointFormat(40, 40)


class TestReciprocal:
    def test_seed_accuracy(self, rng):
        for _ in range(50):
            x = float(rng.uniform(0.01, 1000.0))
            seed = float_reciprocal_seed(x)
            assert abs(seed * x - 1.0) < 0.15

    def test_seed_negative(self):
        assert float_reciprocal_seed(-4.0) < 0

    def test_seed_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            float_reciprocal_seed(0.0)

    def test_newton_convergence(self, rng):
        fmt = FixedPointFormat(16, 24)
        for _ in range(100):
            x = float(rng.uniform(0.05, 500.0))
            r = fixed_reciprocal(x, fmt, refinements=2)
            # Error bounded by quantization of x and of the result.
            assert abs(r * x - 1.0) < 1e-4, x

    def test_more_refinements_not_worse(self, rng):
        fmt = FixedPointFormat(16, 30)
        x = 7.3
        e2 = abs(fixed_reciprocal(x, fmt, 2) * x - 1.0)
        e3 = abs(fixed_reciprocal(x, fmt, 3) * x - 1.0)
        assert e3 <= e2 + fmt.resolution

    def test_zero_after_quantization_raises(self):
        fmt = FixedPointFormat(8, 8)
        with pytest.raises(ZeroDivisionError):
            fixed_reciprocal(1e-9, fmt)


class TestQuantizeRequest:
    def test_handles_none(self):
        fmt = FixedPointFormat(8, 8)
        a, b = quantize_request(fmt, np.ones(3), None)
        assert b is None
        assert np.allclose(a, 1.0)
