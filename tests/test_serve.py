"""Tests for the repro.serve runtime: batcher, cache, pool, service."""

import numpy as np
import pytest

from repro.dynamics import (
    BatchStates,
    batch_evaluate,
    crba,
    evaluate,
)
from repro.dynamics.functions import RBDFunction
from repro.model.library import load_robot
from repro.serve import (
    ArtifactCache,
    BatchPolicy,
    DynamicBatcher,
    DynamicsService,
    ServeRequest,
    ServiceClosed,
    ServiceOverloaded,
    ShardPool,
    mass_matrix_sparsity,
)


def _request(function=RBDFunction.FD, robot="iiwa", nv=7):
    return ServeRequest(robot=robot, function=function,
                        q=np.zeros(nv), qd=np.zeros(nv), u=np.zeros(nv))


class TestBatchPolicy:
    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_s=-1.0)
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=16, max_pending=8)


class TestDynamicBatcher:
    def test_flush_on_full(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=3, max_wait_s=10.0))
        assert batcher.add(_request(), now=0.0) is None
        assert batcher.add(_request(), now=0.1) is None
        batch = batcher.add(_request(), now=0.2)
        assert batch is not None and len(batch) == 3
        assert len(batcher) == 0
        assert batcher.stats.flushed_full == 1
        assert batcher.stats.occupancy == {3: 1}

    def test_flush_on_timeout(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=64, max_wait_s=1.0))
        batcher.add(_request(), now=0.0)
        batcher.add(_request(), now=0.5)
        assert batcher.poll_expired(now=0.9) == []
        flushed = batcher.poll_expired(now=1.0)
        assert len(flushed) == 1 and len(flushed[0]) == 2
        assert batcher.stats.flushed_timeout == 1

    def test_keys_do_not_mix(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=2, max_wait_s=10.0))
        batcher.add(_request(RBDFunction.FD), now=0.0)
        batcher.add(_request(RBDFunction.ID), now=0.0)
        batch = batcher.add(_request(RBDFunction.FD), now=0.0)
        assert [r.function for r in batch] == [RBDFunction.FD] * 2
        assert len(batcher) == 1

    def test_order_preserved_within_batch(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=4, max_wait_s=10.0))
        requests = [_request() for _ in range(4)]
        for k, r in enumerate(requests[:-1]):
            assert batcher.add(r, now=float(k)) is None
        batch = batcher.add(requests[-1], now=3.0)
        assert batch == requests

    def test_backpressure_rejects_and_counts(self):
        batcher = DynamicBatcher(
            BatchPolicy(max_batch=4, max_wait_s=10.0, max_pending=4)
        )
        functions = [RBDFunction.FD, RBDFunction.ID, RBDFunction.M,
                     RBDFunction.MINV]
        for f in functions:  # distinct keys: no group ever fills
            batcher.add(_request(f), now=0.0)
        with pytest.raises(ServiceOverloaded):
            batcher.add(_request(RBDFunction.DID), now=0.0)
        assert batcher.stats.rejected == 1
        assert batcher.stats.accepted == 4

    def test_next_deadline_and_drain(self):
        policy = BatchPolicy(max_batch=8, max_wait_s=2.0)
        batcher = DynamicBatcher(policy)
        assert batcher.next_deadline() is None
        batcher.add(_request(), now=5.0)
        batcher.add(_request(RBDFunction.ID), now=3.0)
        assert batcher.next_deadline() == pytest.approx(5.0)
        flushed = batcher.drain()
        assert sorted(len(b) for b in flushed) == [1, 1]
        assert batcher.next_deadline() is None


class TestArtifactCache:
    def test_build_once(self):
        cache = ArtifactCache()
        first = cache.get("pendulum")
        again = cache.get("pendulum")
        assert first is again
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert "pendulum" in cache and len(cache) == 1
        assert first.build_seconds > 0

    def test_graph_memoized(self):
        cache = ArtifactCache()
        artifacts = cache.get("pendulum")
        g1 = artifacts.graph(RBDFunction.ID)
        assert artifacts.graph(RBDFunction.ID) is g1

    def test_mass_matrix_sparsity_matches_crba(self):
        model = load_robot("hyq")
        mask = mass_matrix_sparsity(model)
        rng = np.random.default_rng(0)
        h = crba(model, model.random_q(rng))
        assert mask.shape == h.shape
        assert np.array_equal(mask, mask.T)
        # Every numerically nonzero entry must be structurally allowed.
        assert np.all(mask[np.abs(h) > 1e-12])
        # A branched robot has genuine structural zeros (cross-leg blocks).
        assert not mask.all()


class TestShardPool:
    def test_round_robin_cycles(self):
        pool = ShardPool(3, "round_robin")
        picks = [pool.select().index for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]
        pool.shutdown()

    def test_least_loaded_prefers_idle(self):
        pool = ShardPool(2, "least_loaded")
        pool.shards[0].begin(4)
        assert pool.select().index == 1
        pool.shards[0].finish(1000.0, 4)
        # Shard 0 now idle but carries busy cycles; shard 1 is cheaper.
        assert pool.shards[0].inflight_requests == 0
        assert pool.select().index == 1
        pool.shutdown()

    def test_cost_aware_least_loaded_weights(self):
        """A faster shard absorbs proportionally more backlog before it
        stops being least loaded."""
        pool = ShardPool(2, "least_loaded")
        pool.shards[0].weight = 10.0     # e.g. a process-engine shard
        pool.shards[1].weight = 1.0
        pool.shards[0].begin(8)          # 8/10 = 0.8 weighted backlog
        assert pool.select().index == 1  # 0 < 0.8: idle shard still wins
        pool.shards[1].begin(1)          # 1/1 = 1.0 > 0.8
        assert pool.select().index == 0  # fast shard absorbs more
        pool.shutdown()

    def test_dispatch_credits_ledger(self):
        pool = ShardPool(1)
        future = pool.dispatch(2, lambda shard: 123.0)
        assert future.result(timeout=5.0) == 123.0
        assert pool.shards[0].dispatched_requests == 2
        assert pool.busy_cycles() == [123.0]
        pool.shutdown()

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            ShardPool(0)
        with pytest.raises(ValueError):
            ShardPool(2, "random")


class TestRobotMemoization:
    def test_load_robot_shared_and_fresh(self):
        a = load_robot("double_pendulum")
        b = load_robot("double_pendulum")
        c = load_robot("double_pendulum", fresh=True)
        assert a is b
        assert c is not a
        assert c.nv == a.nv

    def test_unknown_robot(self):
        with pytest.raises(KeyError, match="unknown robot"):
            load_robot("hal9000")


class TestBatchEvaluate:
    @pytest.mark.parametrize("function", list(RBDFunction),
                             ids=lambda f: f.value)
    def test_matches_direct_evaluate(self, function):
        model = load_robot("double_pendulum")
        states = BatchStates.random(model, 4, seed=1)
        rng = np.random.default_rng(2)
        u = rng.normal(size=(4, model.nv))
        minv = None
        if function is RBDFunction.DIFD:
            minv = np.stack([
                evaluate(model, RBDFunction.MINV, states.q[k])
                for k in range(4)
            ])
        results = batch_evaluate(model, function, states, u, minv=minv)
        assert len(results) == 4
        for k in range(4):
            direct = evaluate(
                model, function, states.q[k], states.qd[k], u[k],
                minv=None if minv is None else minv[k],
            )
            if hasattr(direct, "dqdd_dq"):
                np.testing.assert_allclose(results[k].qdd, direct.qdd,
                                           rtol=1e-9, atol=1e-12)
                np.testing.assert_allclose(results[k].dqdd_dq,
                                           direct.dqdd_dq,
                                           rtol=1e-9, atol=1e-12)
            elif hasattr(direct, "dtau_dq"):
                np.testing.assert_allclose(results[k].dtau_dq,
                                           direct.dtau_dq,
                                           rtol=1e-9, atol=1e-12)
            else:
                np.testing.assert_allclose(results[k], direct,
                                           rtol=1e-9, atol=1e-12)


@pytest.fixture(scope="module")
def service():
    with DynamicsService(
        BatchPolicy(max_batch=8, max_wait_s=2e-3),
        n_shards=2,
        warm_robots=["iiwa"],
    ) as svc:
        yield svc


class TestDynamicsService:
    def test_results_match_direct_evaluation_in_order(self, service):
        """Acceptance: batched service results == direct RBDFunction
        evaluation, delivered on the submission-ordered futures."""
        model = load_robot("iiwa")
        rng = np.random.default_rng(7)
        inputs, futures = [], []
        for _ in range(20):
            q, qd = model.random_state(rng)
            tau = rng.normal(size=model.nv)
            inputs.append((q, qd, tau))
            futures.append(service.submit("iiwa", RBDFunction.FD, q, qd, tau))
        for (q, qd, tau), future in zip(inputs, futures):
            result = future.result(timeout=30.0)
            direct = evaluate(model, RBDFunction.FD, q, qd, tau)
            np.testing.assert_allclose(result.value, direct,
                                       rtol=1e-12, atol=1e-12)
            assert result.batch_size >= 1
            assert result.wall_latency_s >= 0.0

    def test_flush_on_full_path(self):
        """A full group executes immediately at exactly max_batch, even
        when the timeout is far away."""
        with DynamicsService(
            BatchPolicy(max_batch=4, max_wait_s=60.0), n_shards=1
        ) as svc:
            model = load_robot("pendulum")
            rng = np.random.default_rng(8)
            futures = []
            for _ in range(4):
                q, qd = model.random_state(rng)
                futures.append(svc.submit("pendulum", RBDFunction.ID, q, qd,
                                          rng.normal(size=model.nv)))
            results = [f.result(timeout=30.0) for f in futures]
            assert all(r.batch_size == 4 for r in results)
            assert svc.batcher.stats.flushed_full == 1
            assert svc.batcher.stats.flushed_timeout == 0

    def test_flush_on_timeout_path(self, service):
        """A lone sub-batch is flushed once max_wait_s elapses."""
        model = load_robot("iiwa")
        rng = np.random.default_rng(9)
        q, qd = model.random_state(rng)
        future = service.submit("iiwa", RBDFunction.MINV, q, qd)
        result = future.result(timeout=30.0)
        assert result.batch_size < service.policy.max_batch
        direct = evaluate(model, RBDFunction.MINV, q)
        np.testing.assert_allclose(result.value, direct,
                                   rtol=1e-12, atol=1e-12)

    def test_chain_serializes_timing(self, service):
        model = load_robot("iiwa")
        rng = np.random.default_rng(10)
        qs = np.stack([model.random_q(rng) for _ in range(4)])
        qds = rng.normal(size=(4, model.nv))
        taus = rng.normal(size=(4, model.nv))
        futures = service.submit_chain("iiwa", RBDFunction.FD, qs, qds, taus)
        results = [f.result(timeout=30.0) for f in futures]
        for k, r in enumerate(results):
            direct = evaluate(model, RBDFunction.FD, qs[k], qds[k], taus[k])
            np.testing.assert_allclose(r.value, direct,
                                       rtol=1e-12, atol=1e-12)
        # A 4-chain's modeled completion must exceed a pipelined 4-batch's:
        # serial dependencies forbid overlapping the stages.
        artifacts = service.cache.get("iiwa")
        pipelined = artifacts.accelerator.profile_batch(RBDFunction.FD, 4)
        assert (results[0].modeled_makespan_cycles
                > pipelined.makespan_cycles)

    def test_mixed_robots_and_functions(self, service):
        rng = np.random.default_rng(11)
        futures = {}
        for robot in ("iiwa", "pendulum"):
            model = load_robot(robot)
            q, qd = model.random_state(rng)
            futures[robot] = (
                service.submit(robot, RBDFunction.ID, q, qd,
                               np.zeros(model.nv)),
                (model, q, qd),
            )
        for robot, (future, (model, q, qd)) in futures.items():
            result = future.result(timeout=30.0)
            direct = evaluate(model, RBDFunction.ID, q, qd,
                              np.zeros(model.nv))
            np.testing.assert_allclose(result.value, direct,
                                       rtol=1e-12, atol=1e-12)
        assert len(service.cache) >= 2

    def test_metrics_populated(self, service):
        stats = service.stats()
        assert stats["completed"] > 0
        assert stats["failed"] == 0
        assert stats["rejected"] == 0
        assert stats["mean_batch_occupancy"] >= 1.0
        assert stats["modeled_throughput_rps"] > 0
        assert len(stats["shard_busy_cycles"]) == 2
        assert sum(stats["shard_busy_cycles"]) > 0
        assert stats["cache_hits"] > 0

    def test_bad_request_rejected_at_submit(self, service):
        """Malformed inputs fail the submitting caller, not the batch —
        they must never poison co-batched requests from other clients."""
        model = load_robot("iiwa")
        with pytest.raises(ValueError, match="shape"):
            service.submit("iiwa", RBDFunction.ID, np.zeros(3))
        with pytest.raises(ValueError, match="qd"):
            service.submit("iiwa", RBDFunction.ID, np.zeros(model.nv),
                           np.zeros(2))
        with pytest.raises(ValueError, match="minv"):
            service.submit("iiwa", RBDFunction.DIFD, np.zeros(model.nv))
        with pytest.raises(ValueError, match="only accepted for diFD"):
            # A stray minv would be un-stackable with minv-less batchmates.
            service.submit("iiwa", RBDFunction.FD, np.zeros(model.nv),
                           minv=np.eye(model.nv))
        with pytest.raises(KeyError, match="unknown robot"):
            service.submit("hal9000", RBDFunction.ID, np.zeros(3))
        with pytest.raises(ValueError, match="RBDFunction"):
            # An unknown function name must fail here, not strand a
            # dispatched batch whose failure path assumes enum fields.
            service.submit("iiwa", "NotAFunction", np.zeros(model.nv))
        # Function *names* coerce to members (the CLI submits strings).
        by_name = service.submit("iiwa", "M", np.zeros(model.nv))
        assert by_name.result(timeout=30.0).value.shape == (
            model.nv, model.nv
        )
        # The service keeps serving after rejections.
        rng = np.random.default_rng(12)
        q, qd = model.random_state(rng)
        ok = service.submit("iiwa", RBDFunction.ID, q, qd,
                            np.zeros(model.nv))
        ok.result(timeout=30.0)


class TestServiceRobustness:
    def test_cancelled_future_does_not_strand_batchmates(self):
        with DynamicsService(
            BatchPolicy(max_batch=2, max_wait_s=60.0), n_shards=1
        ) as svc:
            model = load_robot("pendulum")
            first = svc.submit("pendulum", RBDFunction.M, model.neutral_q())
            assert first.cancel()
            second = svc.submit("pendulum", RBDFunction.M,
                                model.neutral_q())
            # The batch flushed on full; the cancelled future must not
            # prevent its batchmate from resolving.
            result = second.result(timeout=30.0)
            assert result.batch_size == 2
            assert svc.metrics.completed == 1

    def test_chain_backpressure(self):
        policy = BatchPolicy(max_batch=4, max_wait_s=60.0, max_pending=4)
        with DynamicsService(policy, n_shards=1) as svc:
            model = load_robot("pendulum")
            qs = np.tile(model.neutral_q(), (3, 1))
            svc.submit_chain("pendulum", RBDFunction.M, qs)
            # First chain (3) may still be outstanding; a second chain of 3
            # would exceed max_pending=4.
            with pytest.raises(ServiceOverloaded):
                for _ in range(50):
                    svc.submit_chain("pendulum", RBDFunction.M, qs)

    def test_metrics_bounded_and_zero_when_idle(self):
        from repro.serve import MetricsRegistry, Reservoir

        reservoir = Reservoir(capacity=16, seed=0)
        for v in range(1000):
            reservoir.add(float(v))
        assert len(reservoir.samples) == 16
        assert reservoir.seen == 1000

        registry = MetricsRegistry()
        assert registry.modeled_throughput_rps(1e8) == 0.0
        assert registry.wall_throughput_rps() == 0.0
        assert registry.mean_occupancy() == 0.0


class TestUrgentBypass:
    def test_urgent_skips_batcher_and_resolves_immediately(self):
        """An urgent request must not wait out a far-away flush deadline."""
        with DynamicsService(
            BatchPolicy(max_batch=64, max_wait_s=60.0), n_shards=1
        ) as svc:
            model = load_robot("pendulum")
            rng = np.random.default_rng(13)
            q, qd = model.random_state(rng)
            tau = rng.normal(size=model.nv)
            future = svc.submit("pendulum", RBDFunction.FD, q, qd, tau,
                                urgent=True)
            result = future.result(timeout=5.0)
            assert result.batch_size == 1
            direct = evaluate(model, RBDFunction.FD, q, qd, tau)
            np.testing.assert_allclose(result.value, direct,
                                       rtol=1e-12, atol=1e-12)
            assert len(svc.batcher) == 0          # never entered the batcher
            stats = svc.stats()
            assert stats["urgent"] == 1
            assert stats["accepted"] == 1

    def test_urgent_still_respects_backpressure(self):
        policy = BatchPolicy(max_batch=2, max_wait_s=60.0, max_pending=2)
        with DynamicsService(policy, n_shards=1) as svc:
            model = load_robot("pendulum")
            qs = np.tile(model.neutral_q(), (2, 1))
            svc.submit_chain("pendulum", RBDFunction.M, qs)
            with pytest.raises(ServiceOverloaded):
                for _ in range(50):
                    svc.submit("pendulum", RBDFunction.M, model.neutral_q(),
                               urgent=True)


class TestAdaptiveWait:
    def _policy(self):
        return BatchPolicy(max_batch=2, max_wait_s=1.0, min_wait_s=0.25,
                           adaptive_wait=True)

    def test_full_flushes_shrink_wait_to_floor(self):
        batcher = DynamicBatcher(self._policy())
        assert batcher.effective_wait_s == 1.0
        batcher.add(_request(), now=0.0)
        batcher.add(_request(), now=0.0)          # flush-on-full
        assert batcher.effective_wait_s == pytest.approx(0.5)
        batcher.add(_request(), now=0.1)
        batcher.add(_request(), now=0.1)
        assert batcher.effective_wait_s == pytest.approx(0.25)
        batcher.add(_request(), now=0.2)
        batcher.add(_request(), now=0.2)
        assert batcher.effective_wait_s == pytest.approx(0.25)   # floored

    def test_timeout_flushes_relax_wait_back(self):
        batcher = DynamicBatcher(self._policy())
        for _ in range(3):                         # shrink to the floor
            batcher.add(_request(), now=0.0)
            batcher.add(_request(), now=0.0)
        assert batcher.effective_wait_s == pytest.approx(0.25)
        batcher.add(_request(), now=10.0)
        assert batcher.poll_expired(now=10.2) == []   # 0.2 < effective 0.25
        assert len(batcher.poll_expired(now=10.25)) == 1
        assert batcher.effective_wait_s == pytest.approx(0.5)
        batcher.add(_request(), now=20.0)
        batcher.poll_expired(now=20.5)
        assert batcher.effective_wait_s == pytest.approx(1.0)    # capped

    def test_adaptation_is_per_key(self):
        """A hot key shrinking its wait must not tighten sparse keys'
        coalescing windows (per-queue adaptation, as in Clipper)."""
        batcher = DynamicBatcher(self._policy())
        batcher.add(_request(), now=0.0)
        batcher.add(_request(), now=0.0)           # FD key drops to 0.5
        batcher.add(_request(RBDFunction.ID), now=5.0)
        # The sparse ID key still enjoys the full max_wait_s deadline...
        assert batcher.next_deadline() == pytest.approx(6.0)
        assert batcher.poll_expired(now=5.6) == []
        # ...while a new FD group expires on its own shrunk wait.
        batcher.add(_request(), now=5.6)
        flushed = batcher.poll_expired(now=6.1)
        assert [b[0].function for b in flushed] == [RBDFunction.ID,
                                                    RBDFunction.FD]

    def test_static_policy_never_adapts(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=2, max_wait_s=1.0))
        batcher.add(_request(), now=0.0)
        batcher.add(_request(), now=0.0)
        assert batcher.effective_wait_s == 1.0

    def test_invalid_adaptive_policy_rejected(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_s=1e-3, min_wait_s=1e-2, adaptive_wait=True)
        with pytest.raises(ValueError):
            BatchPolicy(min_wait_s=-1.0)

    def test_service_honours_adaptive_flag(self):
        policy = BatchPolicy(max_batch=2, max_wait_s=60.0, min_wait_s=1e-3,
                             adaptive_wait=True)
        with DynamicsService(policy, n_shards=1) as svc:
            model = load_robot("pendulum")
            futures = [
                svc.submit("pendulum", RBDFunction.M, model.neutral_q())
                for _ in range(2)
            ]
            for f in futures:
                f.result(timeout=5.0)
            assert svc.stats()["effective_wait_s"] == pytest.approx(30.0)


class TestEngineRouting:
    def test_default_engine_is_compiled_and_recorded(self):
        with DynamicsService(
            BatchPolicy(max_batch=4, max_wait_s=1e-3), n_shards=1
        ) as svc:
            assert svc.engine.name == "compiled"
            model = load_robot("pendulum")
            result = svc.submit(
                "pendulum", RBDFunction.M, model.neutral_q()
            ).result(timeout=5.0)
            assert result.engine == "compiled"
            stats = svc.stats()
            assert stats["engine"] == "compiled"
            assert stats["engine_batches"].get("compiled", 0) >= 1
            assert stats["engine_requests"].get("compiled", 0) >= 1

    def test_pinned_process_default_is_honoured(self):
        """set_default_engine beats the service's compiled fallback."""
        from repro.dynamics import set_default_engine

        set_default_engine("loop")
        try:
            with DynamicsService(
                BatchPolicy(max_batch=4, max_wait_s=1e-3), n_shards=1
            ) as svc:
                assert svc.engine.name == "loop"
        finally:
            set_default_engine(None)

    def test_plan_cached_with_artifacts(self):
        from repro.dynamics.plan import plan_for

        with DynamicsService(
            BatchPolicy(max_batch=4, max_wait_s=1e-3), n_shards=1
        ) as svc:
            artifacts = svc.cache.get("hyq")
            # The cached artifact shares the process-wide plan instance,
            # so shard workers and direct plan_for callers hit one plan.
            assert artifacts.plan is plan_for(artifacts.model)
            assert artifacts.plan.describe()["levels"] == 4

    def test_loop_engine_selectable_and_equivalent(self):
        model = load_robot("pendulum")
        rng = np.random.default_rng(14)
        q, qd = model.random_state(rng)
        tau = rng.normal(size=model.nv)
        values = {}
        for engine in ("loop", "vectorized", "compiled"):
            with DynamicsService(
                BatchPolicy(max_batch=4, max_wait_s=1e-3),
                n_shards=1, engine=engine,
            ) as svc:
                result = svc.submit("pendulum", RBDFunction.FD, q, qd, tau,
                                    urgent=True).result(timeout=5.0)
                assert result.engine == engine
                values[engine] = result.value
                assert svc.metrics.engine_batches() == {engine: 1}
        np.testing.assert_allclose(values["loop"], values["vectorized"],
                                   rtol=1e-10, atol=1e-10)
        np.testing.assert_allclose(values["loop"], values["compiled"],
                                   rtol=1e-10, atol=1e-10)


class TestExternalForces:
    """External-force operands end to end: request -> batcher -> engine."""

    def test_f_ext_changes_result_and_matches_direct(self):
        from repro.dynamics import evaluate

        model = load_robot("hyq")
        rng = np.random.default_rng(21)
        q, qd = model.random_state(rng)
        tau = rng.normal(size=model.nv)
        f_ext = {0: rng.normal(size=6), 5: rng.normal(size=6)}
        with DynamicsService(
            BatchPolicy(max_batch=4, max_wait_s=1e-3), n_shards=1
        ) as svc:
            with_force = svc.submit("hyq", RBDFunction.FD, q, qd, tau,
                                    f_ext=f_ext).result(timeout=5.0)
            without = svc.submit("hyq", RBDFunction.FD, q, qd, tau
                                 ).result(timeout=5.0)
        direct = evaluate(model, RBDFunction.FD, q, qd, tau, f_ext=f_ext)
        np.testing.assert_allclose(with_force.value, direct,
                                   rtol=1e-10, atol=1e-10)
        assert not np.allclose(with_force.value, without.value)

    def test_mixed_batch_stacks_forces_per_task(self):
        """Force-carrying and force-free requests coalesce in one batch
        and still resolve to their own per-task values."""
        from repro.dynamics import evaluate

        model = load_robot("iiwa")
        rng = np.random.default_rng(22)
        states = [model.random_state(rng) for _ in range(3)]
        taus = [rng.normal(size=model.nv) for _ in range(3)]
        forces = [None, {2: rng.normal(size=6)}, {6: rng.normal(size=6)}]
        with DynamicsService(
            BatchPolicy(max_batch=3, max_wait_s=60.0), n_shards=1
        ) as svc:
            futures = [
                svc.submit("iiwa", RBDFunction.ID, q, qd, tau, f_ext=fe)
                for (q, qd), tau, fe in zip(states, taus, forces)
            ]
            results = [f.result(timeout=5.0) for f in futures]
        assert all(r.batch_size == 3 for r in results)
        for (q, qd), tau, fe, r in zip(states, taus, forces, results):
            direct = evaluate(model, RBDFunction.ID, q, qd, tau, f_ext=fe)
            np.testing.assert_allclose(r.value, direct,
                                       rtol=1e-10, atol=1e-10)

    def test_f_ext_validation(self):
        model = load_robot("pendulum")
        with DynamicsService(
            BatchPolicy(max_batch=4, max_wait_s=1e-3), n_shards=1
        ) as svc:
            with pytest.raises(ValueError, match="out of range"):
                svc.submit("pendulum", RBDFunction.ID, model.neutral_q(),
                           f_ext={7: np.zeros(6)})
            with pytest.raises(ValueError, match="shape"):
                svc.submit("pendulum", RBDFunction.ID, model.neutral_q(),
                           f_ext={0: np.zeros(3)})
            with pytest.raises(ValueError, match="mass-matrix"):
                svc.submit("pendulum", RBDFunction.M, model.neutral_q(),
                           f_ext={0: np.zeros(6)})


class TestServiceLifecycle:
    def test_close_rejects_new_work_and_drains(self):
        svc = DynamicsService(
            BatchPolicy(max_batch=64, max_wait_s=60.0), n_shards=1
        )
        model = load_robot("pendulum")
        future = svc.submit("pendulum", RBDFunction.M, model.neutral_q())
        svc.close()
        # Pending work was drained on close, not abandoned.
        result = future.result(timeout=30.0)
        direct = evaluate(model, RBDFunction.M, model.neutral_q())
        np.testing.assert_allclose(result.value, direct, rtol=1e-12,
                                   atol=1e-12)
        with pytest.raises(ServiceClosed):
            svc.submit("pendulum", RBDFunction.M, model.neutral_q())
        svc.close()  # idempotent
