"""Tests for the resource / power / energy model."""

import pytest

from repro.core import DaduRBD, PAPER_CONFIG
from repro.core.costmodel import CostModel
from repro.core.resources import (
    BASE_DSP,
    ResourceModel,
    ResourceReport,
    XCVU9P_DSP,
)
from repro.core.saps import organize
from repro.dynamics.functions import RBDFunction
from repro.model.library import atlas, hyq, iiwa, pendulum

FROZEN = PAPER_CONFIG.with_(auto_fit_ii=False)


def build(robot_builder, config=FROZEN):
    org = organize(robot_builder(), config)
    cost = CostModel(org.timing_model, config)
    return ResourceModel(org, cost)


class TestAllocation:
    def test_every_submodule_has_lanes(self):
        model = build(iiwa)
        assert all(v >= 1 for v in model._lanes_by_stage.values())

    def test_lanes_grow_with_robot_size_at_fixed_ii(self):
        small = build(iiwa).report().total_lanes
        large = build(atlas).report().total_lanes
        assert large > 2 * small

    def test_shared_stage_sized_for_heaviest_link(self):
        model = build(hyq)
        # All leg stages exist once per (array, position, kind).
        rf_stages = [s for s in model._lanes_by_stage if s.startswith("Rf")]
        assert len(rf_stages) < model.org.timing_model.nb

    def test_module_lanes_partition(self):
        model = build(iiwa)
        total = model.report().total_lanes
        by_kind = sum(
            model.module_lanes((prefix,))
            for prefix in ("Rf", "Rb", "Df", "Db", "Mb", "Mf", "schedule")
        )
        assert by_kind == total


class TestReport:
    def test_base_overhead_always_present(self):
        report = build(pendulum).report()
        assert report.dsp > BASE_DSP

    def test_fits_detects_overflow(self):
        report = ResourceReport(lanes_by_stage={"x": 10**6}, dsp=2 * XCVU9P_DSP)
        assert not report.fits()

    def test_utilization_fractions(self):
        report = build(iiwa).report()
        for u in (report.dsp_utilization, report.ff_utilization,
                  report.lut_utilization):
            assert 0.0 < u < 1.0


class TestPower:
    def test_power_monotone_in_active_set(self):
        acc = DaduRBD(iiwa())
        small = acc.power_w(RBDFunction.ID)
        large = acc.power_w(RBDFunction.DFD)
        assert large > small

    def test_energy_scales_with_batch_time(self):
        acc = DaduRBD(iiwa())
        fast = acc.energy_per_task_j(RBDFunction.ID)
        slow = acc.energy_per_task_j(RBDFunction.DFD)
        assert slow > fast

    def test_difd_borrows_bf_lanes(self):
        """diFD never computes Minv yet clocks the BF lanes for the final
        matmul: its power exceeds dID's."""
        acc = DaduRBD(iiwa())
        assert acc.power_w(RBDFunction.DIFD) > acc.power_w(RBDFunction.DID)
