"""Tests for the CLI entry point."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "iiwa" in out and "atlas" in out

    def test_report_single_function(self, capsys):
        assert main(["report", "iiwa", "--function", "diFD"]) == 0
        out = capsys.readouterr().out
        assert "diFD" in out
        assert "DSP" in out

    def test_timeline(self, capsys):
        assert main(["timeline", "pendulum", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Rf:A0[0]" in out

    def test_unknown_robot_rejected(self):
        with pytest.raises(SystemExit):
            main(["report", "hal9000"])

    def test_unknown_function_rejected(self):
        with pytest.raises(SystemExit):
            main(["report", "iiwa", "--function", "teleport"])
