"""Tests for the applications layer: integrators, iLQR, end-to-end model."""

import numpy as np
import pytest

from repro.apps.integrators import (
    State,
    euler_sensitivity_step,
    euler_step,
    rk4_sensitivity_step,
    rk4_step,
    rollout,
)
from repro.apps.mpc import EndToEndModel, multithread_profile
from repro.apps.trajopt import QuadraticCost, ilqr
from repro.apps.workloads import (
    mpc_sample_points,
    random_requests,
    sinusoidal_trajectory,
)
from repro.baselines import calibration
from repro.baselines.platforms import AGX_ORIN_CPU
from repro.core import DaduRBD
from repro.dynamics.functions import RBDFunction
from repro.dynamics.kinematics import kinetic_energy, potential_energy
from repro.model.library import double_pendulum, pendulum, quadruped_arm


class TestIntegrators:
    def test_energy_conservation_without_gravity(self, rng):
        """A freely swinging chain with no torque conserves total energy
        (symplectic-ish over short horizons)."""
        model = double_pendulum()
        state = State(model.random_q(rng), 0.3 * rng.normal(size=2))
        zero = np.zeros(2)
        energy0 = kinetic_energy(model, state.q, state.qd) + potential_energy(
            model, state.q
        )
        for _ in range(200):
            state = rk4_step(model, state, zero, 0.002)
        energy1 = kinetic_energy(model, state.q, state.qd) + potential_energy(
            model, state.q
        )
        assert abs(energy1 - energy0) / abs(energy0) < 1e-4

    def test_rk4_more_accurate_than_euler(self, rng):
        model = pendulum()
        state0 = State(np.array([0.5]), np.array([0.0]))
        zero = np.zeros(1)
        # Reference: tiny-step RK4.
        ref = state0
        for _ in range(1000):
            ref = rk4_step(model, ref, zero, 1e-4)
        euler_states = rollout(model, state0, [zero] * 10, 0.01, euler_step)
        rk4_states = rollout(model, state0, [zero] * 10, 0.01, rk4_step)
        err_euler = abs(euler_states[-1].q[0] - ref.q[0])
        err_rk4 = abs(rk4_states[-1].q[0] - ref.q[0])
        assert err_rk4 < err_euler

    def test_rk4_convergence_order(self):
        """Halving dt must shrink the RK4 error by ~2^4."""
        model = pendulum()
        state0 = State(np.array([0.8]), np.array([0.2]))
        zero = np.zeros(1)

        def final_q(dt, steps):
            s = state0
            for _ in range(steps):
                s = rk4_step(model, s, zero, dt)
            return s.q[0]

        ref = final_q(0.0005, 800)
        err_coarse = abs(final_q(0.04, 10) - ref)
        err_fine = abs(final_q(0.02, 20) - ref)
        assert err_coarse / max(err_fine, 1e-14) > 8.0

    @pytest.mark.parametrize("step_fn", [euler_sensitivity_step,
                                         rk4_sensitivity_step])
    def test_sensitivity_matches_finite_differences(self, step_fn, rng):
        model = double_pendulum()
        q, qd = model.random_state(rng)
        tau = rng.normal(size=2)
        dt = 0.01
        lin = step_fn(model, State(q, qd), tau, dt)
        plain = rk4_step if step_fn is rk4_sensitivity_step else euler_step
        eps = 1e-6
        for k in range(4):
            e = np.zeros(4)
            e[k] = eps
            sp = plain(model, State(model.integrate(q, e[:2]), qd + e[2:]),
                       tau, dt)
            sm = plain(model, State(model.integrate(q, -e[:2]), qd - e[2:]),
                       tau, dt)
            numeric = np.concatenate([sp.q - sm.q, sp.qd - sm.qd]) / (2 * eps)
            assert np.allclose(lin.a_matrix[:, k], numeric, atol=1e-6)

    def test_sensitivity_b_matrix(self, rng):
        model = double_pendulum()
        q, qd = model.random_state(rng)
        tau = rng.normal(size=2)
        dt = 0.01
        lin = rk4_sensitivity_step(model, State(q, qd), tau, dt)
        eps = 1e-6
        for k in range(2):
            e = np.zeros(2)
            e[k] = eps
            sp = rk4_step(model, State(q, qd), tau + e, dt)
            sm = rk4_step(model, State(q, qd), tau - e, dt)
            numeric = np.concatenate([sp.q - sm.q, sp.qd - sm.qd]) / (2 * eps)
            assert np.allclose(lin.b_matrix[:, k], numeric, atol=1e-6)


class TestILQR:
    def test_pendulum_swing_up_reduces_cost(self):
        model = pendulum()
        cost = QuadraticCost.for_goal(model, np.array([np.pi]))
        result = ilqr(
            model, cost, State(np.zeros(1), np.zeros(1)),
            horizon=40, dt=0.05, max_iterations=20,
        )
        assert result.converged
        assert result.cost_trace[-1] < 0.2 * result.cost_trace[0]

    def test_pendulum_reaches_neighbourhood_of_goal(self):
        model = pendulum()
        cost = QuadraticCost.for_goal(model, np.array([np.pi]))
        result = ilqr(
            model, cost, State(np.zeros(1), np.zeros(1)),
            horizon=50, dt=0.05, max_iterations=40,
        )
        assert abs(result.states[-1].q[0] - np.pi) < 0.4

    def test_zero_horizon_goal_start(self):
        """Starting at the goal: the optimizer should not move."""
        model = pendulum()
        goal = np.array([np.pi])
        cost = QuadraticCost.for_goal(model, goal)
        from repro.dynamics.rnea import gravity_torques

        hold = gravity_torques(model, goal)
        result = ilqr(
            model, cost, State(goal.copy(), np.zeros(1)),
            horizon=10, dt=0.02, max_iterations=5,
            initial_controls=[hold] * 10,
        )
        assert result.cost_trace[-1] <= result.cost_trace[0] + 1e-9
        assert result.cost_trace[-1] < 1e-2

    def test_cost_monotone_decreasing(self):
        model = double_pendulum()
        cost = QuadraticCost.for_goal(model, np.array([0.4, -0.3]))
        result = ilqr(
            model, cost, State(np.zeros(2), np.zeros(2)),
            horizon=25, dt=0.04, max_iterations=10,
        )
        trace = result.cost_trace
        assert all(b <= a + 1e-9 for a, b in zip(trace, trace[1:]))


class TestEndToEndModel:
    @pytest.fixture(scope="class")
    def e2e(self):
        robot = quadruped_arm()
        return EndToEndModel(robot, AGX_ORIN_CPU, DaduRBD(robot), cpu_threads=4)

    def test_task_speedup_near_paper(self, e2e):
        assert e2e.task_speedup() == pytest.approx(
            calibration.ENDTOEND_TASK_SPEEDUP, rel=0.25
        )

    def test_control_frequency_gain_near_paper(self, e2e):
        assert e2e.control_frequency_gain() == pytest.approx(
            calibration.ENDTOEND_CONTROL_FREQ_GAIN, rel=0.2
        )

    def test_derivatives_share_near_fig2c(self, e2e):
        shares = e2e.cpu_breakdown().shares()
        assert shares["dFD"] == pytest.approx(
            calibration.FIG2C_DERIVATIVES_SHARE, rel=0.2
        )

    def test_accelerated_frequency_higher(self, e2e):
        assert e2e.control_frequency_hz(True) > e2e.control_frequency_hz(False)

    def test_breakdown_sums(self, e2e):
        breakdown = e2e.cpu_breakdown()
        assert breakdown.total == pytest.approx(
            breakdown.offloadable_total + breakdown.other
        )
        assert sum(breakdown.shares().values()) == pytest.approx(1.0)

    def test_multithread_profile_saturates(self):
        robot = quadruped_arm()
        curve = multithread_profile(robot, AGX_ORIN_CPU)
        times = dict(curve)
        # Improvement from 8 -> 12 threads is marginal (Fig 2b).
        assert abs(times[12] - times[8]) < 0.1
        assert times[4] < times[1]


class TestWorkloads:
    def test_random_requests_deterministic(self):
        model = pendulum()
        a = random_requests(model, RBDFunction.ID, 5, seed=3)
        b = random_requests(model, RBDFunction.ID, 5, seed=3)
        assert all(np.allclose(x.q, y.q) for x, y in zip(a, b))

    def test_trajectory_smooth(self):
        model = pendulum()
        traj = sinusoidal_trajectory(model, steps=100, dt=0.01)
        qs = np.array([q for q, _ in traj])
        assert np.abs(np.diff(qs, axis=0)).max() < 0.1

    def test_mpc_sample_points_paper_sizing(self):
        assert mpc_sample_points(pendulum()) == 100
