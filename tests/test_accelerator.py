"""Tests for the DaduRBD facade: functional correctness of every function
on every robot, plus the timing and resource behaviour of Section VI."""

import numpy as np
import pytest

from repro.core import DaduRBD, PAPER_CONFIG, TaskRequest
from repro.core.config import NumericsConfig
from repro.dynamics import (
    fd_derivatives,
    forward_dynamics,
    inverse_dynamics,
    mass_matrix,
    mass_matrix_inverse,
    rnea_derivatives,
)
from repro.dynamics.functions import RBDFunction
from repro.model.library import hyq, iiwa

#: Loose tolerance for the fixed-point + Taylor-trig functional path.
HW_ATOL = 5e-3

EXACT_NUMERICS = PAPER_CONFIG.with_(
    numerics=NumericsConfig(fixed_point=False, taylor_order=19)
)


@pytest.fixture(scope="module")
def iiwa_acc():
    return DaduRBD(iiwa())


@pytest.fixture(scope="module")
def hyq_acc():
    return DaduRBD(hyq())


class TestFunctionalEquivalence:
    """Accelerator outputs must match the reference algorithms."""

    def test_id(self, paper_robot, rng):
        acc = DaduRBD(paper_robot, EXACT_NUMERICS)
        q, qd = paper_robot.random_state(rng)
        qdd = rng.normal(size=paper_robot.nv)
        got = acc.compute(TaskRequest(RBDFunction.ID, q, qd, qdd))
        want = inverse_dynamics(paper_robot, q, qd, qdd)
        assert np.allclose(got, want, atol=1e-9)

    def test_fd(self, paper_robot, rng):
        acc = DaduRBD(paper_robot, EXACT_NUMERICS)
        q, qd = paper_robot.random_state(rng)
        tau = rng.normal(size=paper_robot.nv)
        got = acc.compute(TaskRequest(RBDFunction.FD, q, qd, tau))
        assert np.allclose(got, forward_dynamics(paper_robot, q, qd, tau),
                           atol=1e-9)

    def test_m_and_minv(self, paper_robot, rng):
        acc = DaduRBD(paper_robot, EXACT_NUMERICS)
        q = paper_robot.random_q(rng)
        m = acc.compute(TaskRequest(RBDFunction.M, q))
        minv = acc.compute(TaskRequest(RBDFunction.MINV, q))
        assert np.allclose(m, mass_matrix(paper_robot, q), atol=1e-9)
        assert np.allclose(minv @ m, np.eye(paper_robot.nv), atol=1e-7)

    def test_did(self, paper_robot, rng):
        acc = DaduRBD(paper_robot, EXACT_NUMERICS)
        q, qd = paper_robot.random_state(rng)
        qdd = rng.normal(size=paper_robot.nv)
        got = acc.compute(TaskRequest(RBDFunction.DID, q, qd, qdd))
        want = rnea_derivatives(paper_robot, q, qd, qdd)
        assert np.allclose(got.dtau_dq, want.dtau_dq, atol=1e-9)

    def test_dfd_and_difd_agree(self, paper_robot, rng):
        acc = DaduRBD(paper_robot, EXACT_NUMERICS)
        q, qd = paper_robot.random_state(rng)
        tau = rng.normal(size=paper_robot.nv)
        dfd = acc.compute(TaskRequest(RBDFunction.DFD, q, qd, tau))
        want = fd_derivatives(paper_robot, q, qd, tau)
        assert np.allclose(dfd.dqdd_dq, want.dqdd_dq, atol=1e-8)
        difd = acc.compute(
            TaskRequest(RBDFunction.DIFD, q, qd, dfd.qdd, minv=dfd.minv)
        )
        assert np.allclose(difd.dqdd_dq, dfd.dqdd_dq, atol=1e-8)


class TestHardwareNumerics:
    """With fixed-point + Taylor trig, outputs stay within tolerance."""

    def test_id_close_to_exact(self, iiwa_acc, rng):
        model = iiwa_acc.model
        q, qd = model.random_state(rng)
        qdd = rng.normal(size=model.nv)
        got = iiwa_acc.compute(TaskRequest(RBDFunction.ID, q, qd, qdd))
        want = inverse_dynamics(model, q, qd, qdd)
        assert np.allclose(got, want, atol=HW_ATOL)

    def test_minv_close_to_exact(self, iiwa_acc, rng):
        model = iiwa_acc.model
        q = model.random_q(rng)
        got = iiwa_acc.compute(TaskRequest(RBDFunction.MINV, q))
        assert np.allclose(got, mass_matrix_inverse(model, q), atol=HW_ATOL)

    def test_quantization_actually_applied(self, iiwa_acc, rng):
        model = iiwa_acc.model
        q, qd = model.random_state(rng)
        qdd = rng.normal(size=model.nv)
        exact_acc = DaduRBD(model, EXACT_NUMERICS)
        hw = iiwa_acc.compute(TaskRequest(RBDFunction.ID, q, qd, qdd))
        exact = exact_acc.compute(TaskRequest(RBDFunction.ID, q, qd, qdd))
        assert not np.array_equal(hw, exact)

    def test_run_returns_value_and_timing(self, iiwa_acc, rng):
        model = iiwa_acc.model
        q, qd = model.random_state(rng)
        result = iiwa_acc.run(TaskRequest(RBDFunction.ID, q, qd,
                                          rng.normal(size=model.nv)))
        assert result.latency_cycles > 0
        assert result.value.shape == (model.nv,)


class TestTiming:
    def test_latency_ordering(self, iiwa_acc):
        """M (backward only) is the shortest path; dFD (three stages) the
        longest — the Fig 15 ordering."""
        lat = {f: iiwa_acc.latency_cycles(f) for f in RBDFunction}
        assert lat[RBDFunction.M] < lat[RBDFunction.ID]
        assert lat[RBDFunction.DFD] > lat[RBDFunction.DID]
        assert lat[RBDFunction.DFD] > lat[RBDFunction.FD]

    def test_difd_latency_near_paper_anchor(self, iiwa_acc):
        """Paper: 0.76 us for iiwa diFD at 125 MHz."""
        latency_us = iiwa_acc.latency_seconds(RBDFunction.DIFD) * 1e6
        assert 0.4 < latency_us < 1.2

    def test_throughput_matches_ii(self, iiwa_acc):
        for f in (RBDFunction.ID, RBDFunction.DIFD):
            ii = iiwa_acc.initiation_interval(f)
            thr = iiwa_acc.throughput_tasks_per_s(f, 256)
            expected = iiwa_acc.config.clock_hz / ii
            assert thr == pytest.approx(expected, rel=0.05)

    def test_measured_interval_matches_analytic_ii(self, iiwa_acc):
        profile = iiwa_acc.profile_batch(RBDFunction.DID, 64)
        assert profile.initiation_interval_cycles == pytest.approx(
            iiwa_acc.initiation_interval(RBDFunction.DID), rel=0.1
        )

    def test_analytic_matches_sim_for_large_batch(self, iiwa_acc):
        """The analytic fallback must agree with the event simulation."""
        sim = iiwa_acc.profile_batch(RBDFunction.ID, 512)
        from repro.core.sim import analytic_batch_makespan

        analytic = analytic_batch_makespan(
            iiwa_acc.graph(RBDFunction.ID), 512,
            iiwa_acc.config.transfer_cycles,
            iiwa_acc.config.stream_startup_cycles,
        )
        assert sim.makespan_cycles == pytest.approx(analytic, rel=0.05)

    def test_warm_batch_time_is_ii_bound(self, iiwa_acc):
        ii = iiwa_acc.initiation_interval(RBDFunction.ID)
        t = iiwa_acc.batch_seconds(RBDFunction.ID, 128)
        assert t == pytest.approx(
            128 * ii / iiwa_acc.config.clock_hz, rel=0.01
        )

    def test_fifo_depths_within_capacity_when_streamed(self, iiwa_acc):
        """The paper sizes bypass buffers to avoid stalls.  With the host
        streaming requests at the achievable rate (the Input Stream
        Module's job), every internal FIFO stays within capacity."""
        from repro.core.scheduler import staggered_batch

        ii = iiwa_acc.initiation_interval(RBDFunction.DFD)
        jobs = staggered_batch(128, ii)
        profile = iiwa_acc.profile_batch(RBDFunction.DFD, 128, jobs=jobs)
        assert max(profile.max_queue_depth.values()) <= (
            iiwa_acc.config.fifo_capacity
        )

    def test_io_bound_kicks_in_for_huge_batches(self, iiwa_acc):
        config = iiwa_acc.config.with_(io_bandwidth_bytes_per_s=1e6)
        slow_io = DaduRBD(iiwa_acc.model, config)
        assert slow_io.batch_seconds(RBDFunction.M, 256) > (
            iiwa_acc.batch_seconds(RBDFunction.M, 256)
        )


class TestScaling:
    def test_bigger_robot_fits_with_higher_heavy_ii(self, hyq_acc, iiwa_acc):
        assert hyq_acc.config.heavy_ii_cycles > iiwa_acc.config.heavy_ii_cycles
        assert hyq_acc.resources().dsp_utilization <= hyq_acc.config.dsp_budget

    def test_id_throughput_insensitive_to_robot_size(self, hyq_acc, iiwa_acc):
        """Light stages keep the base II on every robot."""
        thr_iiwa = iiwa_acc.throughput_tasks_per_s(RBDFunction.ID, 256)
        thr_hyq = hyq_acc.throughput_tasks_per_s(RBDFunction.ID, 256)
        assert thr_hyq == pytest.approx(thr_iiwa, rel=0.1)

    def test_derivative_throughput_degrades_with_size(self, hyq_acc, iiwa_acc):
        thr_iiwa = iiwa_acc.throughput_tasks_per_s(RBDFunction.DID, 256)
        thr_hyq = hyq_acc.throughput_tasks_per_s(RBDFunction.DID, 256)
        assert thr_hyq < thr_iiwa


class TestResources:
    def test_iiwa_matches_paper_utilization(self, iiwa_acc):
        """Section VI-C: 62% DSP, 17% FF, 54% LUT."""
        report = iiwa_acc.resources()
        assert report.dsp_utilization == pytest.approx(0.62, abs=0.03)
        assert report.ff_utilization == pytest.approx(0.17, abs=0.02)
        assert report.lut_utilization == pytest.approx(0.54, abs=0.03)
        assert report.fits()

    def test_power_range_matches_paper(self, iiwa_acc):
        """Section VI-C: 6.2 W to 36.8 W across functions; diFD 31.2 W."""
        powers = {f: iiwa_acc.power_w(f) for f in RBDFunction}
        assert min(powers.values()) == pytest.approx(6.2, abs=0.7)
        assert max(powers.values()) == pytest.approx(36.8, abs=1.5)
        assert powers[RBDFunction.DIFD] == pytest.approx(31.2, abs=1.5)

    def test_derivative_functions_draw_more_power(self, iiwa_acc):
        assert iiwa_acc.power_w(RBDFunction.DID) > iiwa_acc.power_w(
            RBDFunction.ID
        )

    def test_energy_per_task_positive(self, iiwa_acc):
        for f in (RBDFunction.ID, RBDFunction.DFD):
            assert iiwa_acc.energy_per_task_j(f) > 0

    def test_describe_contains_resources(self, iiwa_acc):
        text = iiwa_acc.describe()
        assert "DSP" in text and "125 MHz" in text
