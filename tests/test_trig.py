"""Tests for the Global Trigonometric Module (Taylor sin/cos)."""

import numpy as np
import pytest

from repro.core.trig import effective_angles, max_error, sincos


class TestSincos:
    @pytest.mark.parametrize("order", [3, 5, 7, 9])
    def test_error_decreases_with_order(self, order):
        if order > 3:
            assert max_error(order) < max_error(order - 2)

    def test_default_order_accuracy(self):
        # The shipped order 9 must sit below the fixed-point LSB (2^-20).
        assert max_error(9) < 2**-20
        # Order 7 is borderline (the reason the default is 9).
        assert max_error(7) < 5e-6

    def test_pythagorean_identity(self):
        q = np.linspace(-10, 10, 1001)
        s, c = sincos(q)
        assert np.allclose(s * s + c * c, 1.0, atol=1e-7)

    def test_matches_numpy_at_special_angles(self):
        q = np.array([0.0, np.pi / 6, np.pi / 4, np.pi / 2, np.pi, -np.pi / 2])
        s, c = sincos(q)
        assert np.allclose(s, np.sin(q), atol=1e-9)
        assert np.allclose(c, np.cos(q), atol=1e-9)

    def test_periodicity(self):
        q = np.linspace(-1, 1, 101)
        s1, c1 = sincos(q)
        s2, c2 = sincos(q + 2 * np.pi)
        assert np.allclose(s1, s2, atol=1e-9)
        assert np.allclose(c1, c2, atol=1e-9)

    def test_scalar_like_input(self):
        s, c = sincos(np.array([0.3]))
        assert np.isclose(s[0], np.sin(0.3), atol=1e-9)

    def test_low_order_is_rough(self):
        # Order 1 keeps sin(x) ~ x on the reduced interval: visible error.
        assert max_error(1) > 1e-3


class TestEffectiveAngles:
    def test_identity_up_to_taylor_error(self):
        q = np.linspace(-3, 3, 301)
        q_eff = effective_angles(q, order=9)
        err = np.abs(np.unwrap(q_eff) - q)
        assert err.max() < 1e-7

    def test_wraps_to_principal_interval(self):
        q = np.array([3 * np.pi])
        q_eff = effective_angles(q)
        assert -np.pi <= q_eff[0] <= np.pi
        assert np.isclose(np.sin(q_eff[0]), np.sin(q[0]), atol=1e-7)
