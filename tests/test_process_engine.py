"""Equivalence and lifecycle tests for the ``"process"`` engine.

The pool is forced to two workers with ``min_chunk=1`` so the *real*
IPC path — spawn-started workers, pickled models, shared-memory operand
stacks, chunked execution — is exercised even on a single-core runner
(where the default configuration would correctly fall back to inline
execution).  One pool is shared by the whole module; workers stay warm
across robots, mirroring serve traffic.
"""

import numpy as np
import pytest

from repro.dynamics import BatchStates, batch_evaluate
from repro.dynamics.functions import RBDFunction
from repro.dynamics.process import ProcessEngine
from repro.model.library import ROBOT_REGISTRY, load_robot

from test_backend import (
    _batch_inputs,
    assert_results_match,
    loop_reference,
)

TOL = dict(rtol=1e-10, atol=1e-10)
ROBOTS = sorted(ROBOT_REGISTRY)
FUNCTIONS = list(RBDFunction)


@pytest.fixture(scope="module")
def pool_engine():
    """A 2-worker pool exercising the real spawn + shared-memory path."""
    engine = ProcessEngine(n_workers=2, min_chunk=1)
    yield engine
    engine.shutdown()


@pytest.mark.parametrize("n", [1, 256])
@pytest.mark.parametrize("robot", ROBOTS)
def test_process_matches_loop(pool_engine, robot, n):
    """process == loop, all robots, all seven functions, batch 1/256.

    Batch 1 runs inline (one row cannot split across two workers — the
    degenerate path must be equivalent too); batch 256 splits 128/128
    across the worker pool.
    """
    model = load_robot(robot)
    for function in FUNCTIONS:
        states, u, minv = _batch_inputs(model, function, n)
        got = batch_evaluate(model, function, states, u, minv=minv,
                             engine=pool_engine)
        assert_results_match(function, got,
                             loop_reference(robot, function, n))
    if n == 256:
        assert pool_engine.started


@pytest.mark.parametrize(
    "function",
    [RBDFunction.ID, RBDFunction.FD, RBDFunction.DID, RBDFunction.DFD],
    ids=lambda f: f.value,
)
def test_process_f_ext_path(pool_engine, function):
    """External forces survive the shared-memory packing."""
    model = load_robot("hyq")
    n = 8
    states, u, _ = _batch_inputs(model, function, n, seed=21)
    rng = np.random.default_rng(22)
    f_ext = {0: rng.normal(size=(n, 6)), model.nb - 1: rng.normal(size=6)}
    got = batch_evaluate(model, function, states, u, f_ext=f_ext,
                         engine=pool_engine)
    want = batch_evaluate(model, function, states, u, f_ext=f_ext,
                          engine="loop")
    assert_results_match(function, got, want)


def test_non_contiguous_float32_operands(pool_engine):
    """The batch boundary coerces exotic operand layouts before the
    engines (including the shared-memory packer) see them."""
    model = load_robot("iiwa")
    n = 64
    rng = np.random.default_rng(5)
    q64 = np.stack([model.random_q(rng) for _ in range(n)])
    # float32 q, and a qd that is a column-sliced (non-contiguous) view.
    q32 = q64.astype(np.float32)
    qd_wide = rng.normal(size=(n, 2 * model.nv))
    qd_view = qd_wide[:, ::2]
    assert not qd_view.flags["C_CONTIGUOUS"]
    states = BatchStates(q32, qd_view)
    assert states.q.dtype == np.float64
    assert states.q.flags["C_CONTIGUOUS"]
    assert states.qd.flags["C_CONTIGUOUS"]
    u = rng.normal(size=(n, model.nv))
    got = batch_evaluate(model, RBDFunction.FD, states, u,
                         engine=pool_engine)
    want = batch_evaluate(model, RBDFunction.FD, states, u, engine="loop")
    assert_results_match(RBDFunction.FD, got, want)


def test_inline_fallback_below_chunk_threshold():
    """Small batches never pay for the pool (no workers started)."""
    engine = ProcessEngine(n_workers=2, min_chunk=64)
    model = load_robot("iiwa")
    states, u, _ = _batch_inputs(model, RBDFunction.FD, 32, seed=3)
    got = batch_evaluate(model, RBDFunction.FD, states, u, engine=engine)
    assert_results_match(RBDFunction.FD, got,
                         batch_evaluate(model, RBDFunction.FD, states, u,
                                        engine="loop"))
    assert not engine.started


def test_single_worker_pool_runs_inline():
    engine = ProcessEngine(n_workers=1, min_chunk=1)
    model = load_robot("pendulum")
    states, u, _ = _batch_inputs(model, RBDFunction.ID, 16, seed=4)
    batch_evaluate(model, RBDFunction.ID, states, u, engine=engine)
    assert not engine.started


def test_worker_error_propagates(pool_engine):
    """A worker-side failure surfaces as one parent-side error carrying
    the worker traceback, and the pool stays usable afterwards."""
    model = load_robot("iiwa")
    states, u, _ = _batch_inputs(model, RBDFunction.FD, 64, seed=6)
    # Malformed operands are rejected at the batch boundary before any
    # worker sees them, so poison the engine directly: an f_ext link
    # index out of range fails inside the worker's kernel.
    with pytest.raises(RuntimeError, match="worker failed"):
        pool_engine.fd_batch(
            model, states.q, states.qd, u,
            {model.nb + 99: np.zeros((64, 6))},  # link index out of range
        )
    # Pool survives and still computes correctly.
    got = batch_evaluate(model, RBDFunction.FD, states, u,
                         engine=pool_engine)
    assert_results_match(
        RBDFunction.FD, got,
        batch_evaluate(model, RBDFunction.FD, states, u, engine="loop"),
    )


def test_shutdown_and_restart():
    engine = ProcessEngine(n_workers=2, min_chunk=1)
    model = load_robot("pendulum")
    states, u, _ = _batch_inputs(model, RBDFunction.FD, 8, seed=7)
    first = batch_evaluate(model, RBDFunction.FD, states, u, engine=engine)
    assert engine.started
    engine.shutdown()
    assert not engine.started
    again = batch_evaluate(model, RBDFunction.FD, states, u, engine=engine)
    assert engine.started
    for a, b in zip(first, again):
        np.testing.assert_allclose(a, b, rtol=0, atol=0)
    engine.shutdown()


def test_registered_in_engine_registry():
    from repro.dynamics.engine import available_engines, get_engine

    assert "process" in available_engines()
    engine = get_engine("process")
    assert isinstance(engine, ProcessEngine)
    assert get_engine("process") is engine  # singleton
