"""Fault-tolerance tests for the serve runtime: deadlines, retries,
poison isolation, circuit breakers, engine degradation, worker death.

Every scenario arms :mod:`repro.faults` with a deterministic seed (or
hand-builds a poison request), so failures here replay exactly.
"""

import threading
import time

import numpy as np
import pytest

from repro.backend import BackendCapabilityError
from repro.dynamics import BatchStates, batch_evaluate
from repro.dynamics.engine import LoopEngine, register_engine
from repro.dynamics.functions import RBDFunction
from repro.dynamics.process import ProcessEngine
from repro.faults import FaultSpec, InjectedFault, injected
from repro.model.library import load_robot
from repro.serve import (
    BatchExecutionError,
    BatchPolicy,
    DeadlineExceededError,
    DynamicBatcher,
    DynamicsService,
    RetryPolicy,
    ServeError,
    ServeRequest,
)


def _request(function=RBDFunction.M, robot="iiwa", nv=7, **kwargs):
    return ServeRequest(robot=robot, function=function,
                        q=np.zeros(nv), qd=np.zeros(nv), u=np.zeros(nv),
                        **kwargs)


def _wait_until(predicate, timeout_s=5.0, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {what}")


class TestRetryPolicy:
    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)

    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(RuntimeError("transient"))
        assert not policy.is_retryable(ValueError("poison"))
        assert not policy.is_retryable(TypeError("poison"))
        # An explicit retryable attribute (InjectedFault) is believed
        # over the type-based default.
        assert policy.is_retryable(
            InjectedFault("x", site="s", retryable=True))
        assert not policy.is_retryable(
            InjectedFault("x", site="s", retryable=False))

    def test_backoff_grows_and_jitters_within_bounds(self):
        from random import Random
        policy = RetryPolicy(backoff_s=1e-3, backoff_multiplier=2.0,
                             jitter=0.25)
        rng = Random(0)
        d1 = policy.backoff_for(1, rng)
        d3 = policy.backoff_for(3, rng)
        assert 0.75e-3 <= d1 <= 1.25e-3
        assert 3e-3 <= d3 <= 5e-3


class TestDeadlines:
    def test_submit_rejects_nonpositive_deadline(self):
        with DynamicsService(n_shards=1) as svc:
            with pytest.raises(ValueError):
                svc.submit("iiwa", RBDFunction.M, np.zeros(7),
                           deadline_s=0.0)

    def test_request_expiry(self):
        r = _request(deadline_s=0.5)
        r.arrival_s = 100.0
        assert not r.expired(100.4)
        assert r.expired(100.5)
        assert not _request().expired(1e12)     # no deadline, never expires

    def test_batcher_sheds_expired(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=64, max_wait_s=10.0))
        keep = _request()
        lapsed = _request(deadline_s=0.1)
        batcher.add(keep, now=0.0)
        batcher.add(lapsed, now=0.0)
        assert batcher.has_deadlines
        shed = batcher.shed_expired(now=0.2)
        assert shed == [lapsed]
        assert len(batcher) == 1
        assert not batcher.has_deadlines
        assert batcher.stats.shed == 1
        # Sweep with no deadline-carrying requests is a cheap no-op.
        assert batcher.shed_expired(now=1.0) == []

    def test_expired_request_resolves_with_deadline_error(self):
        # max_wait_s far beyond the deadline: the flusher's shed sweep,
        # not a batch flush, must resolve the future.
        policy = BatchPolicy(max_batch=64, max_wait_s=0.5)
        with DynamicsService(policy, n_shards=1) as svc:
            future = svc.submit("iiwa", RBDFunction.M, np.zeros(7),
                                deadline_s=1e-3)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=5.0)
            _wait_until(lambda: svc.stats()["shed"] >= 1, what="shed count")

    def test_dispatch_time_shed(self):
        with DynamicsService(n_shards=1) as svc:
            lapsed = _request(deadline_s=1e-4)
            lapsed.arrival_s = time.monotonic() - 1.0
            live = _request()
            assert svc._shed_batch([lapsed, live]) == [live]
            with pytest.raises(DeadlineExceededError):
                lapsed.future.result(timeout=0)


class TestRetries:
    def test_transient_fault_retried_to_success(self):
        policy = RetryPolicy(max_attempts=3, backoff_s=1e-4)
        with DynamicsService(n_shards=1, retry=policy) as svc:
            with injected(FaultSpec("shard.execute", max_faults=1),
                          seed=11) as inj:
                future = svc.submit("iiwa", RBDFunction.M, np.zeros(7),
                                    urgent=True)
                result = future.result(timeout=10.0)
            assert result.value.shape == (7, 7)
            assert inj.stats()["shard.execute"]["fired"] == 1
            stats = svc.stats()
            assert stats["retries"] >= 1
            assert stats["retried_requests"] >= 1

    def test_nonretryable_singleton_fails_with_context(self):
        with DynamicsService(n_shards=1) as svc:
            with injected(FaultSpec("shard.execute", retryable=False),
                          seed=0):
                future = svc.submit("iiwa", RBDFunction.M, np.zeros(7),
                                    urgent=True)
                with pytest.raises(BatchExecutionError) as err:
                    future.result(timeout=10.0)
            e = err.value
            assert e.robot == "iiwa"
            assert e.function == "M"
            assert e.batch_size == 1
            assert e.shard == 0
            assert e.attempts == 1
            assert isinstance(e.__cause__, InjectedFault)

    def test_retry_exhaustion_fails_terminally(self):
        policy = RetryPolicy(max_attempts=2, backoff_s=1e-4)
        with DynamicsService(n_shards=1, retry=policy,
                             breaker_threshold=100) as svc:
            with injected(FaultSpec("shard.execute"), seed=0):
                future = svc.submit("iiwa", RBDFunction.M, np.zeros(7),
                                    urgent=True)
                with pytest.raises(BatchExecutionError) as err:
                    future.result(timeout=10.0)
            assert err.value.attempts == 2


class TestPoisonIsolation:
    def test_bad_request_isolated_from_batchmates(self):
        with DynamicsService(n_shards=1) as svc:
            # Malformed on purpose (wrong q width) — built directly to
            # bypass submit's validation, the way a corrupted payload or
            # a validator gap would reach execution.
            bad = ServeRequest(robot="iiwa", function=RBDFunction.M,
                               q=np.zeros(3))
            good = _request()
            for r in (bad, good):
                r.arrival_s = time.monotonic()
                svc._track(r)
            svc._dispatch([bad, good], chained=False)
            assert good.future.result(timeout=10.0).value.shape == (7, 7)
            with pytest.raises(BatchExecutionError) as err:
                bad.future.result(timeout=10.0)
            assert isinstance(err.value.__cause__, ValueError)
            assert err.value.batch_size == 1    # failed alone, post-bisect
            assert svc.stats()["poison_isolations"] >= 1


class TestCircuitBreaker:
    def test_breaker_opens_and_probe_recloses(self):
        with DynamicsService(n_shards=2, retry=RetryPolicy(backoff_s=1e-4),
                             breaker_threshold=1,
                             breaker_cooldown_s=0.02) as svc:
            with injected(FaultSpec("shard.execute", max_faults=1),
                          seed=5):
                future = svc.submit("iiwa", RBDFunction.M, np.zeros(7),
                                    urgent=True)
                # The failure opens the first shard's breaker; the retry
                # re-places onto the healthy shard and succeeds.
                assert future.result(timeout=10.0).value.shape == (7, 7)
                assert svc.stats()["breaker_opens"] >= 1
                # Background probe closes the breaker after cooldown.
                _wait_until(
                    lambda: all(s.health == "healthy"
                                for s in svc.pool.shards),
                    what="breaker to re-close",
                )
            stats = svc.stats()
            assert stats["probes"] >= 1
            assert stats["probe_failures"] == 0
            # Quarantined-shard traffic still succeeded end to end.
            future = svc.submit("iiwa", RBDFunction.M, np.zeros(7),
                                urgent=True)
            assert future.result(timeout=10.0).value.shape == (7, 7)

    def test_placement_skips_open_breaker(self):
        with DynamicsService(n_shards=2, breaker_threshold=1,
                             breaker_cooldown_s=60.0) as svc:
            svc.pool.shards[0].record_failure(threshold=1, cooldown_s=60.0,
                                              now=time.monotonic())
            assert svc.pool.shards[0].health == "open"
            for _ in range(4):
                f = svc.submit("iiwa", RBDFunction.M, np.zeros(7),
                               urgent=True)
                f.result(timeout=10.0)
            assert svc.pool.shards[0].dispatched_batches == 0
            assert svc.pool.shards[1].dispatched_batches >= 4
            events = svc.pool.placement_events()
            assert all(e["shard"] == 1 for e in events)
            assert events[-1]["health"][0] == "open"

    def test_drain_and_restart(self):
        with DynamicsService(n_shards=2) as svc:
            svc.pool.drain(0)
            assert svc.pool.shards[0].health == "draining"
            for _ in range(4):
                svc.submit("iiwa", RBDFunction.M, np.zeros(7),
                           urgent=True).result(timeout=10.0)
            assert svc.pool.shards[0].dispatched_batches == 0
            svc.pool.restart(0)
            assert svc.pool.shards[0].health == "healthy"
            for _ in range(2):
                svc.submit("iiwa", RBDFunction.M, np.zeros(7),
                           urgent=True).result(timeout=10.0)
            assert svc.pool.shards[0].dispatched_batches >= 1


class _BrittleEngine(LoopEngine):
    """Raises a capability error on every batch — degradation bait."""

    name = "brittle"

    def m_batch(self, model, q):
        raise BackendCapabilityError("brittle engine cannot serve M")


class TestEngineDegradation:
    def test_capability_error_degrades_shard_and_rerurns(self):
        register_engine("brittle", _BrittleEngine)
        with DynamicsService(n_shards=1, engine="brittle") as svc:
            future = svc.submit("iiwa", RBDFunction.M, np.zeros(7),
                                urgent=True)
            result = future.result(timeout=10.0)
            assert result.value.shape == (7, 7)
            # Unknown engines degrade to "compiled"; the shard records it.
            assert svc.pool.shards[0].engine_name == "compiled"
            assert svc.stats()["engine_degradations"] == 1

    def test_loop_engine_is_terminal(self):
        with DynamicsService(n_shards=1, engine="loop") as svc:
            assert svc._degrade_shard(svc.pool.shards[0]) is False

    def test_jit_without_backend_degrades_to_process(self, monkeypatch):
        """A jit shard whose trace backend is missing (jax-less host)
        serves the batch anyway: jit -> process via the chain."""
        from repro.dynamics.jit import JitEngine

        def no_backend(self):
            raise BackendCapabilityError(
                "the jit engine needs a trace-compiling backend"
            )

        monkeypatch.setattr(JitEngine, "_resolve_backend", no_backend)
        with DynamicsService(n_shards=1, engine=JitEngine()) as svc:
            assert svc.pool.shards[0].engine_name == "jit"
            result = svc.submit("iiwa", RBDFunction.M, np.zeros(7),
                                urgent=True).result(timeout=10.0)
            assert result.value.shape == (7, 7)
            assert svc.pool.shards[0].engine_name == "process"
            assert svc.stats()["engine_degradations"] == 1


class TestShutdownSemantics:
    def test_close_resolves_stranded_futures(self):
        svc = DynamicsService(n_shards=1)
        stranded = _request()
        svc._track(stranded)
        svc.close()
        with pytest.raises(ServeError, match="service shut down"):
            stranded.future.result(timeout=0)

    def test_close_drains_pending_work_normally(self):
        policy = BatchPolicy(max_batch=64, max_wait_s=30.0)
        svc = DynamicsService(policy, n_shards=1)
        futures = [svc.submit("iiwa", RBDFunction.M, np.zeros(7))
                   for _ in range(3)]
        svc.close()
        for f in futures:
            assert f.result(timeout=10.0).value.shape == (7, 7)

    def test_concurrent_close_is_idempotent(self):
        """Racing close() calls all block until teardown completes.

        Regression: a second closer used to return immediately on the
        already-set flag while the first was still mid-teardown, so
        callers could observe a "closed" service with live shards and
        unresolved futures."""
        svc = DynamicsService(n_shards=2)
        futures = [svc.submit("iiwa", RBDFunction.M, np.zeros(7))
                   for _ in range(8)]
        errors = []

        def closer():
            try:
                svc.close()
                # Any returned close() must see finished teardown.
                assert all(f.done() for f in futures)
            except Exception as exc:           # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15.0)
        assert not errors
        assert not any(t.is_alive() for t in threads)
        for f in futures:
            f.result(timeout=0)                # drained, not stranded
        svc.close()                            # still safe afterwards


class TestWorkerDeath:
    def test_engine_detects_and_recovers_from_worker_kill(self):
        engine = ProcessEngine(n_workers=2, min_chunk=1)
        try:
            model = load_robot("iiwa")
            q = np.zeros((4, model.nv))
            states = BatchStates(q, q.copy())
            with injected(FaultSpec("process.worker", kind="worker_kill",
                                    max_faults=1), seed=0):
                with pytest.raises(RuntimeError, match="lost its workers"):
                    batch_evaluate(model, RBDFunction.M, states,
                                   engine=engine)
            # The pool restarts lazily on the next call.
            out = batch_evaluate(model, RBDFunction.M, states, engine=engine)
            assert len(out) == 4
            assert all(m.shape == (model.nv, model.nv) for m in out)
            assert engine.started
        finally:
            engine.shutdown()

    def test_worker_death_under_serve_retries_to_success(self):
        engine = ProcessEngine(n_workers=2, min_chunk=1)
        try:
            policy = BatchPolicy(max_batch=4, max_wait_s=10.0)
            with DynamicsService(policy, n_shards=1, engine=engine,
                                 retry=RetryPolicy(backoff_s=1e-4)) as svc:
                with injected(FaultSpec("process.worker",
                                        kind="worker_kill", max_faults=1),
                              seed=0):
                    futures = [
                        svc.submit("iiwa", RBDFunction.M, np.zeros(7))
                        for _ in range(4)
                    ]
                    for f in futures:
                        assert f.result(timeout=30.0).value.shape == (7, 7)
                assert svc.stats()["retries"] >= 1
        finally:
            engine.shutdown()
