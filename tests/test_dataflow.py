"""Tests for per-function dataflow graphs (Fig 9, Fig 14) and the cost model."""

import pytest

from repro.core.config import PAPER_CONFIG
from repro.core.costmodel import (
    HEAVY_KINDS,
    SERVICE_FLOORS,
    CostModel,
    SubmoduleKind,
)
from repro.core.modules import active_stage_names, build_dataflow
from repro.core.saps import organize
from repro.dynamics.functions import RBDFunction
from repro.model.library import hyq, iiwa

ALL_FUNCTIONS = list(RBDFunction)


def make(builder=iiwa, config=PAPER_CONFIG):
    org = organize(builder(), config)
    cost = CostModel(org.timing_model, config)
    return org, cost


class TestCostModel:
    def test_df_cost_grows_with_depth(self):
        """Fig 7c: deeper dRNEA forward submodules need more resources."""
        org, cost = make()
        budgets = [
            cost.budget(SubmoduleKind.DF, link).parallelism
            for link in range(org.timing_model.nb)
        ]
        assert budgets == sorted(budgets)
        assert budgets[-1] > 3 * budgets[0]

    def test_rf_cost_flat_across_chain(self):
        org, cost = make()
        ops = [cost.ops(SubmoduleKind.RF, link) for link in range(7)]
        assert max(ops) == min(ops)      # identical revolute joints

    def test_service_respects_floor(self):
        org, cost = make()
        for kind in SubmoduleKind:
            budget = cost.budget(kind, 0)
            assert budget.service_cycles >= SERVICE_FLOORS[kind]

    def test_multiplex_shrinks_service_budget(self):
        org, cost = make()
        single = cost.budget(SubmoduleKind.DF, 3, multiplex=1)
        shared = cost.budget(SubmoduleKind.DF, 3, multiplex=2)
        assert shared.load_cycles >= single.load_cycles
        assert shared.parallelism >= single.parallelism

    def test_heavy_kinds_use_heavy_budget(self):
        config = PAPER_CONFIG.with_(
            ii_target_heavy_cycles=40, auto_fit_ii=False
        )
        org, cost = make(iiwa, config)
        heavy = cost.budget(SubmoduleKind.DF, 6)
        light = cost.budget(SubmoduleKind.RF, 6)
        assert heavy.service_cycles <= 40
        assert light.service_cycles <= config.ii_target_cycles
        assert SubmoduleKind.DF in HEAVY_KINDS

    def test_mb_cheaper_without_minv(self):
        org, cost = make()
        link = 3
        assert cost.ops(SubmoduleKind.MB, link, out_minv=False) < cost.ops(
            SubmoduleKind.MB, link, out_minv=True
        )

    def test_reupdate_transforms_reduces_backward_ops(self):
        config = PAPER_CONFIG.with_(
            reupdate_transforms=False, auto_fit_ii=False
        )
        org, cost_off = make(iiwa, config)
        _, cost_on = make(iiwa, PAPER_CONFIG)
        assert (
            cost_off.ops(SubmoduleKind.RB, 3)
            < cost_on.ops(SubmoduleKind.RB, 3)
        )

    def test_lazy_update_ablation_slows_backward(self):
        config = PAPER_CONFIG.with_(lazy_update=False, auto_fit_ii=False)
        org, cost_off = make(iiwa, config)
        _, cost_on = make(iiwa, PAPER_CONFIG)
        assert (
            cost_off.budget(SubmoduleKind.RB, 3).service_cycles
            > cost_on.budget(SubmoduleKind.RB, 3).service_cycles
        )


class TestGraphShapes:
    @pytest.mark.parametrize("function", ALL_FUNCTIONS)
    def test_graph_builds_and_is_acyclic(self, function):
        org, cost = make()
        graph = build_dataflow(org, cost, function)
        # Nodes are added in topological order by construction; verify.
        for node in graph.nodes:
            assert all(p < node.index for p in node.preds)
        assert graph.sources()
        assert graph.sinks()

    def test_id_uses_only_fb_module(self):
        org, cost = make()
        stages = active_stage_names(build_dataflow(org, cost, RBDFunction.ID))
        assert any(s.startswith("Rf") for s in stages)
        assert not any(s.startswith(("Mb", "Mf", "Df", "Db")) for s in stages)

    def test_m_uses_only_bf_backward(self):
        org, cost = make()
        stages = active_stage_names(build_dataflow(org, cost, RBDFunction.M))
        assert any(s.startswith("Mb") for s in stages)
        assert not any(s.startswith(("Mf", "Rf", "Df")) for s in stages)

    def test_minv_adds_forward_sweep(self):
        org, cost = make()
        stages = active_stage_names(build_dataflow(org, cost, RBDFunction.MINV))
        assert any(s.startswith("Mf") for s in stages)

    def test_fd_uses_both_modules_plus_schedule(self):
        org, cost = make()
        stages = active_stage_names(build_dataflow(org, cost, RBDFunction.FD))
        assert any(s.startswith("Rf") for s in stages)
        assert any(s.startswith("Mb") for s in stages)
        assert "schedule:matvec" in stages

    def test_difd_skips_bf_module(self):
        """diFD receives Minv from the host (Fig 14e): no Mb/Mf stages."""
        org, cost = make()
        stages = active_stage_names(build_dataflow(org, cost, RBDFunction.DIFD))
        assert not any(s.startswith(("Mb", "Mf")) for s in stages)
        assert "schedule:matmul" in stages

    def test_dfd_visits_fb_twice(self):
        """dFD's two FB-module passes double the Rf stage load (Fig 14f)."""
        org, cost = make()
        graph_dfd = build_dataflow(org, cost, RBDFunction.DFD)
        graph_id = build_dataflow(org, cost, RBDFunction.ID)
        rf_visits_dfd = sum(
            1 for n in graph_dfd.nodes if n.stage.startswith("Rf")
        )
        rf_visits_id = sum(
            1 for n in graph_id.nodes if n.stage.startswith("Rf")
        )
        assert rf_visits_dfd == 2 * rf_visits_id

    def test_dfd_has_feedback_stage(self):
        org, cost = make()
        stages = active_stage_names(build_dataflow(org, cost, RBDFunction.DFD))
        assert "feedback" in stages

    def test_multiplexed_links_share_stage_nodes(self):
        org, cost = make(hyq)
        graph = build_dataflow(org, cost, RBDFunction.ID)
        model = org.timing_model
        lf = org.stage_key(SubmoduleKind.RF, model.link_index("lf_haa"))
        visits = sum(1 for n in graph.nodes if n.stage == lf)
        assert visits == 2       # two legs share the stage

    def test_ii_of_dfd_exceeds_did(self):
        org, cost = make()
        ii_dfd = build_dataflow(org, cost, RBDFunction.DFD).initiation_interval()
        ii_did = build_dataflow(org, cost, RBDFunction.DID).initiation_interval()
        assert ii_dfd > ii_did

    def test_m_node_override_shortens_service(self):
        org, cost = make()
        graph = build_dataflow(org, cost, RBDFunction.M)
        overrides = [
            n for n in graph.nodes
            if n.stage.startswith("Mb") and n.service_override is not None
        ]
        assert overrides
        for node in overrides:
            assert node.service_override <= graph.stages[node.stage].service_cycles
