"""Whole-stack integration tests: closed-loop control on the accelerator.

These exercise model -> dynamics -> accelerator (with hardware numerics)
-> application in one loop, the way a downstream user would run the
system.
"""

import numpy as np
import pytest

from repro.apps.integrators import State, rk4_step
from repro.apps.workloads import sinusoidal_trajectory
from repro.core import DaduRBD, TaskRequest
from repro.dynamics.functions import RBDFunction
from repro.dynamics.rnea import gravity_torques
from repro.model.library import iiwa


@pytest.fixture(scope="module")
def accelerator():
    return DaduRBD(iiwa())


class TestComputedTorqueControl:
    def test_tracking_with_accelerator_id(self, accelerator):
        """Computed-torque control: feedforward ID runs on the accelerator
        (fixed-point datapath); tracking error stays small."""
        model = accelerator.model
        dt = 0.002
        reference = sinusoidal_trajectory(model, steps=120, dt=dt,
                                          amplitude=0.3, seed=5)
        kp, kd = 400.0, 40.0
        q0, qd0 = reference[0]
        state = State(q0.copy(), qd0.copy())
        max_err = 0.0
        for k in range(1, len(reference)):
            q_ref, qd_ref = reference[k]
            qdd_ref = (qd_ref - reference[k - 1][1]) / dt
            desired = qdd_ref + kp * (q_ref - state.q) + kd * (qd_ref - state.qd)
            tau = accelerator.compute(
                TaskRequest(RBDFunction.ID, state.q, state.qd, desired)
            )
            state = rk4_step(model, state, tau, dt)
            max_err = max(max_err, float(np.abs(state.q - q_ref).max()))
        assert max_err < 0.05, f"tracking error {max_err}"

    def test_gravity_hold_with_accelerator(self, accelerator, rng):
        """Holding torques from the accelerator keep the arm still."""
        model = accelerator.model
        q = model.random_q(rng)
        tau = accelerator.compute(
            TaskRequest(RBDFunction.ID, q, np.zeros(model.nv),
                        np.zeros(model.nv))
        )
        # Compare with the exact gravity compensation; fixed-point error
        # only.
        assert np.allclose(tau, gravity_torques(model, q), atol=1e-2)
        state = State(q.copy(), np.zeros(model.nv))
        for _ in range(50):
            state = rk4_step(model, state, tau, 0.001)
        assert np.abs(state.q - q).max() < 1e-3


class TestBatchedPipelineEndToEnd:
    def test_simulated_throughput_consistent_with_run(self, accelerator):
        """run() latency and profile_batch agree on the same graph."""
        request_latency = accelerator.latency_cycles(RBDFunction.DID)
        profile = accelerator.profile_batch(RBDFunction.DID, 32)
        assert profile.first_latency_cycles == pytest.approx(
            request_latency, rel=0.01
        )
        assert profile.makespan_cycles > request_latency

    def test_mixed_function_session(self, accelerator, rng):
        """A realistic session: Minv once, then diFD batches reusing it."""
        model = accelerator.model
        q, qd = model.random_state(rng)
        minv = accelerator.compute(TaskRequest(RBDFunction.MINV, q))
        results = []
        for _ in range(4):
            qdd = rng.normal(size=model.nv)
            out = accelerator.compute(
                TaskRequest(RBDFunction.DIFD, q, qd, qdd, minv=minv)
            )
            results.append(out)
        # All share the same Minv and q: identical dqdd_dtau blocks.
        for out in results[1:]:
            assert np.allclose(out.dqdd_dtau, results[0].dqdd_dtau)
