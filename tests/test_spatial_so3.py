"""Unit tests for SO(3) utilities."""

import numpy as np
import pytest

from repro.spatial.so3 import (
    exp_so3,
    is_rotation,
    log_so3,
    rot_axis,
    rotx,
    roty,
    rotz,
    skew,
    unskew,
)


class TestSkew:
    def test_skew_cross_product(self, rng):
        v = rng.normal(size=3)
        u = rng.normal(size=3)
        assert np.allclose(skew(v) @ u, np.cross(v, u))

    def test_skew_antisymmetric(self, rng):
        v = rng.normal(size=3)
        assert np.allclose(skew(v), -skew(v).T)

    def test_unskew_roundtrip(self, rng):
        v = rng.normal(size=3)
        assert np.allclose(unskew(skew(v)), v)

    def test_skew_of_zero(self):
        assert np.allclose(skew(np.zeros(3)), np.zeros((3, 3)))


class TestExpLog:
    def test_exp_identity(self):
        assert np.allclose(exp_so3(np.zeros(3)), np.eye(3))

    def test_exp_is_rotation(self, rng):
        for _ in range(10):
            assert is_rotation(exp_so3(rng.normal(size=3)))

    def test_exp_log_roundtrip(self, rng):
        for _ in range(20):
            w = rng.normal(size=3)
            w = w / np.linalg.norm(w) * rng.uniform(0.01, np.pi - 0.01)
            assert np.allclose(log_so3(exp_so3(w)), w, atol=1e-9)

    def test_log_near_pi(self):
        w = np.array([0.0, 0.0, np.pi - 1e-8])
        r = exp_so3(w)
        w_back = log_so3(r)
        assert np.allclose(exp_so3(w_back), r, atol=1e-6)

    def test_log_small_angle(self):
        w = np.array([1e-11, -2e-11, 5e-12])
        assert np.allclose(log_so3(exp_so3(w)), w, atol=1e-12)

    def test_exp_quarter_turn_z(self):
        r = exp_so3(np.array([0.0, 0.0, np.pi / 2]))
        assert np.allclose(r @ np.array([1.0, 0.0, 0.0]), [0.0, 1.0, 0.0])


class TestAxisRotations:
    @pytest.mark.parametrize("fn,axis", [
        (rotx, [1.0, 0.0, 0.0]),
        (roty, [0.0, 1.0, 0.0]),
        (rotz, [0.0, 0.0, 1.0]),
    ])
    def test_matches_rot_axis(self, fn, axis):
        theta = 0.7
        assert np.allclose(fn(theta), rot_axis(np.array(axis), theta))

    def test_rotz_convention(self):
        # Coordinate transform: a point on +x, seen from a frame rotated by
        # +90deg about z, appears on -y.
        e = rotz(np.pi / 2)
        assert np.allclose(e @ np.array([1.0, 0.0, 0.0]), [0.0, -1.0, 0.0])

    def test_rot_axis_transpose_of_exp(self, rng):
        axis = rng.normal(size=3)
        axis /= np.linalg.norm(axis)
        theta = 1.1
        assert np.allclose(rot_axis(axis, theta), exp_so3(axis * theta).T)

    def test_composition(self):
        assert np.allclose(rotz(0.3) @ rotz(0.4), rotz(0.7))


class TestIsRotation:
    def test_rejects_scaled(self):
        assert not is_rotation(2.0 * np.eye(3))

    def test_rejects_reflection(self):
        assert not is_rotation(np.diag([1.0, 1.0, -1.0]))

    def test_rejects_wrong_shape(self):
        assert not is_rotation(np.eye(4))

    def test_accepts_identity(self):
        assert is_rotation(np.eye(3))
