"""The jit engine: functional-kernel equivalence and the fused rollout.

The acceptance sweep mirrors ``test_backend``'s: every Table-I function
through the ``jit`` engine must match the ``loop`` reference to 1e-10
on all library robots at batch 1 and 256, f_ext included.  The engine
is exercised on every backend that can carry the functional kernels:

* ``numpy`` — always available; ``jit`` is the identity so the kernels
  run interpreted (pure correctness of the out-of-place sweeps);
* ``jax`` — skipped cleanly when not installed; when present (the
  cpu-jit CI job) every function additionally round-trips through a
  real XLA trace, and the fused ``lax.scan`` rollout is compared
  against the per-step loop.

Loop references are shared with ``test_backend``'s memoized cache, so
the sweep adds no duplicate reference computations to the suite.
"""

import numpy as np
import pytest

from test_backend import (
    FUNCTIONS,
    ROBOTS,
    TOL,
    _batch_inputs,
    assert_results_match,
    loop_reference,
)

from repro.backend import (
    BackendCapabilityError,
    available_backends,
    get_backend,
)
from repro.dynamics import batch_evaluate
from repro.dynamics.engine import available_engines, get_engine
from repro.dynamics.functions import RBDFunction
from repro.dynamics.jit import FUSED_SCHEMES, JitEngine
from repro.model.library import load_robot
from repro.rollout import RolloutEngine

#: One engine per backend for the whole module, so compile caches warm
#: across tests exactly like a long-lived process.
_ENGINES: dict[str, JitEngine] = {}


@pytest.fixture(params=["numpy", "jax"], scope="module")
def jit_engine(request):
    """A JitEngine pinned per backend; uninstalled runtimes skip."""
    name = request.param
    if name not in available_backends():
        pytest.skip(f"backend {name!r} is not installed")
    engine = _ENGINES.get(name)
    if engine is None:
        engine = _ENGINES[name] = JitEngine(backend=name)
    return engine


# ---------------------------------------------------------------------------
# Registry and resolution
# ---------------------------------------------------------------------------


def test_jit_engine_registered():
    assert "jit" in available_engines()
    engine = get_engine("jit")
    assert engine.name == "jit"
    assert engine is get_engine("jit")


def test_jit_without_trace_backend_degrades_to_capability_error():
    """On a jax-less host the *default* jit engine must fail with the
    degradable capability error at call time, not at construction."""
    if "jax" in available_backends():
        pytest.skip("jax is installed; the default resolution succeeds")
    engine = JitEngine()          # construction never probes
    with pytest.raises(BackendCapabilityError, match="jit engine"):
        engine.m_batch(load_robot("pendulum"), np.zeros(1))


def test_jit_pinned_to_unknown_backend_is_capability_error():
    engine = JitEngine(backend="cupy")
    if "cupy" in available_backends():
        pytest.skip("cupy is installed here")
    with pytest.raises(BackendCapabilityError, match="cupy"):
        engine.m_batch(load_robot("pendulum"), np.zeros(1))


def test_structure_hash_stable_and_distinct():
    from repro.dynamics.plan import plan_for

    iiwa, hyq = load_robot("iiwa"), load_robot("hyq")
    h = plan_for(iiwa).structure_hash()
    assert h == plan_for(iiwa).structure_hash()
    assert h != plan_for(hyq).structure_hash()


def test_compile_cache_reuses_traces():
    engine = JitEngine(backend="numpy")
    model = load_robot("pendulum")
    q = np.zeros((2, 1))
    engine.m_batch(model, q)
    engine.m_batch(model, q)
    stats = engine.compile_cache_stats()
    assert stats["entries"] == 1
    assert stats["misses"] == 1
    assert stats["hits"] >= 1


# ---------------------------------------------------------------------------
# Equivalence sweep (the acceptance criterion)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n", [1, 256])
@pytest.mark.parametrize("robot", ROBOTS)
def test_jit_matches_loop(jit_engine, robot, n):
    """jit == loop at 1e-10: all robots, all seven functions."""
    model = load_robot(robot)
    for function in FUNCTIONS:
        states, u, minv = _batch_inputs(model, function, n)
        got = batch_evaluate(model, function, states, u, minv=minv,
                             engine=jit_engine)
        assert_results_match(function, got,
                             loop_reference(robot, function, n))


@pytest.mark.parametrize(
    "function",
    [RBDFunction.ID, RBDFunction.FD, RBDFunction.DFD, RBDFunction.DID],
    ids=lambda f: f.value,
)
def test_jit_f_ext(jit_engine, function):
    """The dense external-force operand agrees with the loop path."""
    model = load_robot("hyq")
    n = 6
    states, u, _ = _batch_inputs(model, function, n, seed=11)
    rng = np.random.default_rng(12)
    f_ext = {0: rng.normal(size=(n, 6)), model.nb - 1: rng.normal(size=6)}
    got = batch_evaluate(model, function, states, u, f_ext=f_ext,
                         engine=jit_engine)
    want = batch_evaluate(model, function, states, u, f_ext=f_ext,
                          engine="loop")
    assert_results_match(function, got, want)


def test_jit_difd_computes_minv_when_missing(jit_engine):
    model = load_robot("iiwa")
    states, u, minv = _batch_inputs(model, RBDFunction.DIFD, 4)
    out = jit_engine.difd_batch(model, states.q, states.qd, u)
    np.testing.assert_allclose(out[3], minv, **TOL)


# ---------------------------------------------------------------------------
# Fused rollout
# ---------------------------------------------------------------------------


def _rollout_inputs(model, n, t, seed=5):
    rng = np.random.default_rng(seed)
    from repro.dynamics import BatchStates

    st = BatchStates.random(model, n, seed=seed)
    us = 0.05 * rng.normal(size=(n, t, model.nv))
    return st.q, st.qd, us


@pytest.mark.parametrize("scheme", FUSED_SCHEMES)
def test_fused_rollout_matches_per_step(jit_engine, scheme):
    """The scanned trajectory equals the per-step compiled loop."""
    model = load_robot("iiwa")
    q0, qd0, us = _rollout_inputs(model, 3, 16)
    got = RolloutEngine(scheme, engine=jit_engine).rollout(
        model, q0, qd0, us, dt=1e-3
    )
    assert got.engine == "jit"
    want = RolloutEngine(scheme, engine="compiled").rollout(
        model, q0, qd0, us, dt=1e-3
    )
    np.testing.assert_allclose(got.qs, want.qs, rtol=1e-8, atol=1e-8)
    np.testing.assert_allclose(got.qds, want.qds, rtol=1e-8, atol=1e-8)


def test_fused_rollout_bitwise_deterministic(jit_engine):
    """Repeated fused rollouts of identical inputs agree bit for bit."""
    model = load_robot("iiwa")
    q0, qd0, us = _rollout_inputs(model, 4, 24)
    first = jit_engine.fused_rollout(model, q0, qd0, us, dt=1e-3,
                                     scheme="semi_implicit")
    second = jit_engine.fused_rollout(model, q0, qd0, us, dt=1e-3,
                                      scheme="semi_implicit")
    assert np.array_equal(first[0], second[0])
    assert np.array_equal(first[1], second[1])


def test_fused_path_taken_and_gated(jit_engine, monkeypatch):
    """Open-loop free rollouts fuse; quasi-velocity models stay stepped."""
    calls = []
    orig = jit_engine.fused_rollout

    def spy(*args, **kwargs):
        calls.append(args[0].name)
        return orig(*args, **kwargs)

    monkeypatch.setattr(jit_engine, "fused_rollout", spy)
    iiwa = load_robot("iiwa")
    q0, qd0, us = _rollout_inputs(iiwa, 2, 4)
    RolloutEngine("euler", engine=jit_engine).rollout(
        iiwa, q0, qd0, us, dt=1e-3
    )
    assert calls == ["iiwa"]

    atlas = load_robot("atlas")       # floating base: exp-map integrate
    assert not jit_engine.supports_fused_rollout(atlas, "euler")
    q0, qd0, us = _rollout_inputs(atlas, 2, 2)
    res = RolloutEngine("euler", engine=jit_engine).rollout(
        atlas, q0, qd0, us, dt=1e-3
    )
    assert calls == ["iiwa"]          # no second fused call
    assert res.qs.shape == (2, 3, atlas.nv)


def test_fused_rollout_jax_matches_numpy_interp():
    """When jax is present, the scanned XLA rollout agrees with the
    interpreted numpy fold (same functional kernels, same fold)."""
    if "jax" not in available_backends():
        pytest.skip("jax is not installed")
    assert get_backend("jax").capabilities.scan
    model = load_robot("tiago")
    q0, qd0, us = _rollout_inputs(model, 3, 12)
    jax_qs, jax_qds = JitEngine(backend="jax").fused_rollout(
        model, q0, qd0, us, dt=1e-3, scheme="rk4"
    )
    np_qs, np_qds = JitEngine(backend="numpy").fused_rollout(
        model, q0, qd0, us, dt=1e-3, scheme="rk4"
    )
    np.testing.assert_allclose(jax_qs, np_qs, rtol=1e-8, atol=1e-8)
    np.testing.assert_allclose(jax_qds, np_qds, rtol=1e-8, atol=1e-8)
