"""Tests for analytical dynamics derivatives (dID, dFD, diFD)."""

import numpy as np

from repro.dynamics.derivatives import (
    fd_derivatives,
    fd_derivatives_from_inverse,
    rnea_derivatives,
)
from repro.dynamics.functions import forward_dynamics
from repro.dynamics.mminv import mass_matrix_inverse
from repro.dynamics.rnea import rnea


def _numeric_id_derivatives(model, q, qd, qdd, f_ext=None, eps=1e-6):
    nv = model.nv
    num_dq = np.zeros((nv, nv))
    num_dqd = np.zeros((nv, nv))
    for k in range(nv):
        e = np.zeros(nv)
        e[k] = eps
        num_dq[:, k] = (
            rnea(model, model.integrate(q, e), qd, qdd, f_ext)
            - rnea(model, model.integrate(q, -e), qd, qdd, f_ext)
        ) / (2 * eps)
        num_dqd[:, k] = (
            rnea(model, q, qd + e, qdd, f_ext)
            - rnea(model, q, qd - e, qdd, f_ext)
        ) / (2 * eps)
    return num_dq, num_dqd


class TestIDDerivatives:
    def test_matches_finite_differences(self, any_robot, rng):
        q, qd = any_robot.random_state(rng)
        qdd = rng.normal(size=any_robot.nv)
        analytic = rnea_derivatives(any_robot, q, qd, qdd)
        num_dq, num_dqd = _numeric_id_derivatives(any_robot, q, qd, qdd)
        assert np.allclose(analytic.dtau_dq, num_dq, atol=5e-5)
        assert np.allclose(analytic.dtau_dqd, num_dqd, atol=5e-5)

    def test_with_external_forces(self, rng):
        from repro.model.library import hyq

        model = hyq()
        q, qd = model.random_state(rng)
        qdd = rng.normal(size=model.nv)
        f_ext = {model.link_index("rf_kfe"): rng.normal(size=6)}
        analytic = rnea_derivatives(model, q, qd, qdd, f_ext)
        num_dq, num_dqd = _numeric_id_derivatives(model, q, qd, qdd, f_ext)
        assert np.allclose(analytic.dtau_dq, num_dq, atol=5e-5)
        assert np.allclose(analytic.dtau_dqd, num_dqd, atol=5e-5)

    def test_column_sparsity_pattern(self, rng):
        """dtau_i/dq_j == 0 unless i and j share a supporting chain — the
        incremental-column sparsity (Fig 7b)."""
        from repro.model.library import hyq

        model = hyq()
        q, qd = model.random_state(rng)
        qdd = rng.normal(size=model.nv)
        d = rnea_derivatives(model, q, qd, qdd)
        lf_dofs = set(
            range(*_slice_bounds(model, "lf_haa"))
        ) | set(range(*_slice_bounds(model, "lf_kfe")))
        rh_rows = range(*_slice_bounds(model, "rh_kfe"))
        for row in rh_rows:
            for col in lf_dofs:
                assert np.isclose(d.dtau_dq[row, col], 0.0, atol=1e-10)

    def test_dtau_dqd_zero_at_zero_velocity_for_fixed_base(self, rng):
        """At qd=0 the Coriolis terms vanish; dtau/dqd must be zero for a
        fixed-base arm (gravity does not depend on qd)."""
        from repro.model.library import iiwa

        model = iiwa()
        q = model.random_q(rng)
        qdd = rng.normal(size=model.nv)
        d = rnea_derivatives(model, q, np.zeros(model.nv), qdd)
        assert np.allclose(d.dtau_dqd, 0.0, atol=1e-10)

    def test_gravity_only_matches_potential_hessian_symmetry(self, rng):
        """With qd=qdd=0, dtau/dq is the Hessian of potential energy and so
        must be symmetric (fixed-base robots)."""
        from repro.model.library import iiwa

        model = iiwa()
        q = model.random_q(rng)
        d = rnea_derivatives(model, q, np.zeros(model.nv), np.zeros(model.nv))
        assert np.allclose(d.dtau_dq, d.dtau_dq.T, atol=1e-8)


class TestFDDerivatives:
    def test_matches_finite_differences(self, paper_robot, rng):
        model = paper_robot
        q, qd = model.random_state(rng)
        tau = rng.normal(size=model.nv)
        d = fd_derivatives(model, q, qd, tau)
        eps = 1e-6
        num_dq = np.zeros((model.nv, model.nv))
        num_dqd = np.zeros((model.nv, model.nv))
        for k in range(model.nv):
            e = np.zeros(model.nv)
            e[k] = eps
            num_dq[:, k] = (
                forward_dynamics(model, model.integrate(q, e), qd, tau)
                - forward_dynamics(model, model.integrate(q, -e), qd, tau)
            ) / (2 * eps)
            num_dqd[:, k] = (
                forward_dynamics(model, q, qd + e, tau)
                - forward_dynamics(model, q, qd - e, tau)
            ) / (2 * eps)
        assert np.allclose(d.dqdd_dq, num_dq, atol=5e-4)
        assert np.allclose(d.dqdd_dqd, num_dqd, atol=5e-4)

    def test_dtau_derivative_is_minv(self, paper_robot, rng):
        model = paper_robot
        q, qd = model.random_state(rng)
        tau = rng.normal(size=model.nv)
        d = fd_derivatives(model, q, qd, tau)
        assert np.allclose(d.dqdd_dtau, mass_matrix_inverse(model, q), atol=1e-9)

    def test_relationship_eq3(self, paper_robot, rng):
        """dFD == -Minv dID (the paper's Eq. 3), verified explicitly."""
        model = paper_robot
        q, qd = model.random_state(rng)
        tau = rng.normal(size=model.nv)
        qdd = forward_dynamics(model, q, qd, tau)
        id_parts = rnea_derivatives(model, q, qd, qdd)
        minv = mass_matrix_inverse(model, q)
        d = fd_derivatives(model, q, qd, tau)
        assert np.allclose(d.dqdd_dq, -minv @ id_parts.dtau_dq, atol=1e-9)
        assert np.allclose(d.dqdd_dqd, -minv @ id_parts.dtau_dqd, atol=1e-9)


class TestDiFD:
    def test_matches_dfd(self, paper_robot, rng):
        """diFD(q, qd, qdd, Minv) must equal dFD(q, qd, tau) when qdd/tau
        correspond — the consistency the paper's dataflow relies on."""
        model = paper_robot
        q, qd = model.random_state(rng)
        tau = rng.normal(size=model.nv)
        d_full = fd_derivatives(model, q, qd, tau)
        d_inc = fd_derivatives_from_inverse(
            model, q, qd, d_full.qdd, d_full.minv
        )
        assert np.allclose(d_inc.dqdd_dq, d_full.dqdd_dq, atol=1e-9)
        assert np.allclose(d_inc.dqdd_dqd, d_full.dqdd_dqd, atol=1e-9)

    def test_computes_minv_when_missing(self, iiwa_robot, rng):
        q, qd = iiwa_robot.random_state(rng)
        qdd = rng.normal(size=iiwa_robot.nv)
        d = fd_derivatives_from_inverse(iiwa_robot, q, qd, qdd)
        assert np.allclose(d.minv, mass_matrix_inverse(iiwa_robot, q), atol=1e-9)


def _slice_bounds(model, name):
    sl = model.dof_slice(model.link_index(name))
    return sl.start, sl.stop
