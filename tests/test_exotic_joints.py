"""Full-algorithm coverage for the less common joint types.

Builds robots out of helical, cylindrical, spherical and translation
joints and pushes them through every dynamics algorithm plus the
accelerator — the paper's generality claim ("revolute, prismatic, helical,
cylindrical, planar, spherical, 3-DOF translation, 6-DOF joint").
"""

import numpy as np
import pytest

from repro.core import DaduRBD, TaskRequest
from repro.core.config import PAPER_CONFIG, NumericsConfig
from repro.dynamics import (
    aba,
    crba,
    forward_dynamics,
    mass_matrix,
    mass_matrix_inverse,
    rnea,
    rnea_derivatives,
)
from repro.dynamics.functions import RBDFunction
from repro.model.joints import (
    CylindricalJoint,
    HelicalJoint,
    SphericalJoint,
    Translation3Joint,
)
from repro.model.robot import RobotBuilder
from repro.spatial.random import random_inertia

EXACT = PAPER_CONFIG.with_(
    numerics=NumericsConfig(fixed_point=False, taylor_order=19)
)


def exotic_robot(seed: int = 0):
    """spherical -> helical -> cylindrical -> translation3 chain."""
    rng = np.random.default_rng(seed)
    builder = RobotBuilder("exotic")
    builder.add_link("ball", None, SphericalJoint(), random_inertia(rng))
    builder.add_link(
        "screw", "ball", HelicalJoint(np.array([0.0, 0.0, 1.0]), pitch=0.2),
        random_inertia(rng), translation=np.array([0.0, 0.0, 0.3]),
    )
    builder.add_link(
        "cyl", "screw", CylindricalJoint(np.array([0.0, 1.0, 0.0])),
        random_inertia(rng), translation=np.array([0.1, 0.0, 0.2]),
    )
    builder.add_link(
        "slider", "cyl", Translation3Joint(), random_inertia(rng),
        translation=np.array([0.0, 0.1, 0.1]),
    )
    return builder.build()


@pytest.fixture(scope="module")
def robot():
    return exotic_robot()


class TestExoticDynamics:
    def test_dof_bookkeeping(self, robot):
        assert robot.nv == 3 + 1 + 2 + 3

    def test_fd_inverts_id(self, robot, rng):
        q, qd = robot.random_state(rng)
        qdd = rng.normal(size=robot.nv)
        tau = rnea(robot, q, qd, qdd)
        assert np.allclose(aba(robot, q, qd, tau), qdd, atol=1e-8)

    def test_minv_consistent(self, robot, rng):
        q = robot.random_q(rng)
        assert np.allclose(
            mass_matrix_inverse(robot, q) @ crba(robot, q),
            np.eye(robot.nv), atol=1e-7,
        )

    def test_mminvgen_m_matches_crba(self, robot, rng):
        q = robot.random_q(rng)
        assert np.allclose(mass_matrix(robot, q), crba(robot, q), atol=1e-9)

    def test_derivatives_match_finite_differences(self, robot, rng):
        q, qd = robot.random_state(rng)
        qdd = rng.normal(size=robot.nv)
        d = rnea_derivatives(robot, q, qd, qdd)
        eps = 1e-6
        for k in range(robot.nv):
            e = np.zeros(robot.nv)
            e[k] = eps
            col = (
                rnea(robot, robot.integrate(q, e), qd, qdd)
                - rnea(robot, robot.integrate(q, -e), qd, qdd)
            ) / (2 * eps)
            assert np.allclose(d.dtau_dq[:, k], col, atol=5e-5), k

    def test_forward_dynamics_on_manifold_rollout(self, robot, rng):
        """A few integration steps stay finite and consistent."""
        q, qd = robot.random_state(rng)
        for _ in range(5):
            qdd = forward_dynamics(robot, q, qd, np.zeros(robot.nv))
            qd = qd + 0.002 * qdd
            q = robot.integrate(q, 0.002 * qd)
        assert np.all(np.isfinite(q)) and np.all(np.isfinite(qd))


class TestExoticOnAccelerator:
    def test_accelerator_builds_and_matches(self, robot, rng):
        acc = DaduRBD(robot, EXACT)
        q, qd = robot.random_state(rng)
        qdd = rng.normal(size=robot.nv)
        got = acc.compute(TaskRequest(RBDFunction.ID, q, qd, qdd))
        assert np.allclose(got, rnea(robot, q, qd, qdd), atol=1e-9)

    def test_timing_profile_finite(self, robot):
        acc = DaduRBD(robot)
        for f in RBDFunction:
            assert acc.latency_cycles(f) > 0
            assert acc.initiation_interval(f) > 0

    def test_resources_fit(self, robot):
        acc = DaduRBD(robot)
        assert acc.resources().fits()
