"""Ragged batching suite: RaggedBatch dispatch, batcher coalescing, and
the service's coalesced multi-robot execute path.

The contract under test is lossless coalescing: folding several
(robot, function) queues into one ragged batch must change *when* work
executes and *how it is counted* (merged flushes, ragged counters,
segment-aware placement events) but never any result — per-request
values are compared bitwise against the fragmented path.
"""

import numpy as np
import pytest

from repro.core.config import PAPER_CONFIG
from repro.dynamics import (
    BatchStates,
    RaggedBatch,
    batch_evaluate,
    batch_evaluate_ragged,
)
from repro.dynamics.functions import RBDFunction
from repro.model.library import load_robot
from repro.serve import BatchPolicy, DynamicBatcher, DynamicsService
from repro.serve.pool import ShardConfig, accelerator_desc
from repro.serve.request import ServeRequest


def _req(robot: str, function=RBDFunction.FD, seed=0) -> ServeRequest:
    nv = load_robot(robot).nv
    rng = np.random.default_rng(seed)
    return ServeRequest(robot=robot, function=function,
                        q=rng.standard_normal(nv),
                        qd=rng.standard_normal(nv),
                        u=rng.standard_normal(nv))


class TestRaggedBatch:
    def test_windows_and_rows(self):
        rb = RaggedBatch()
        iiwa, hyq = load_robot("iiwa"), load_robot("hyq")
        s1 = rb.add(iiwa, BatchStates.random(iiwa, 3, seed=0))
        s2 = rb.add(hyq, BatchStates.random(hyq, 2, seed=1))
        assert (s1.lo, s1.hi) == (0, 3)
        assert (s2.lo, s2.hi) == (3, 5)
        assert len(rb) == 5 and rb.n_segments == 2
        desc = rb.describe()
        assert desc["rows"] == 5
        assert [w["robot"] for w in desc["windows"]] == ["iiwa", "hyq"]

    @pytest.mark.parametrize("function",
                             [RBDFunction.FD, RBDFunction.MINV,
                              RBDFunction.DFD],
                             ids=lambda f: f.value)
    def test_matches_per_robot_batches(self, function):
        """One ragged dispatch == the per-robot calls, bit for bit."""
        rng = np.random.default_rng(3)
        rb = RaggedBatch()
        expected = []
        for robot, n in (("iiwa", 3), ("hyq", 2), ("iiwa", 2)):
            model = load_robot(robot)
            states = BatchStates.random(model, n, seed=n)
            u = rng.standard_normal((n, model.nv))
            rb.add(model, states, u)
            expected.extend(batch_evaluate(model, function, states, u,
                                           engine="compiled"))
        got = batch_evaluate_ragged(function, rb, engine="compiled")
        assert len(got) == len(expected) == 7
        for a, b in zip(got, expected):
            if hasattr(a, "dqdd_dq"):       # FDDerivatives per-task result
                np.testing.assert_array_equal(a.qdd, b.qdd)
                np.testing.assert_array_equal(a.dqdd_dq, b.dqdd_dq)
                np.testing.assert_array_equal(a.dqdd_dqd, b.dqdd_dqd)
                np.testing.assert_array_equal(a.dqdd_dtau, b.dqdd_dtau)
            else:
                np.testing.assert_array_equal(np.asarray(a), np.asarray(b))

    def test_empty_batch(self):
        assert batch_evaluate_ragged(RBDFunction.FD, RaggedBatch()) == []


class TestBatcherCoalescing:
    POLICY = BatchPolicy(max_batch=64, max_wait_s=1.0, coalesce=True)

    def test_timeout_flush_folds_compatible_queues(self):
        b = DynamicBatcher(self.POLICY)
        t = 100.0
        b.add(_req("iiwa"), t)
        b.add(_req("hyq"), t)
        b.add(_req("hyq", seed=1), t)
        assert b.active_queues() == 2
        assert b.poll_expired(t + 0.5) == []
        flushes = b.poll_expired(t + 1.0)
        # One merged flush absorbed both queues, queue-grouped (each
        # robot's requests contiguous — the segment order ragged
        # execution expects).
        assert len(flushes) == 1
        assert [r.robot for r in flushes[0]] == ["iiwa", "hyq", "hyq"]
        assert b.stats.flushed_merged == 1
        assert b.stats.queues_flushed == 2
        assert len(b) == 0 and b.active_queues() == 0

    def test_different_functions_do_not_merge(self):
        b = DynamicBatcher(self.POLICY)
        t = 0.0
        b.add(_req("iiwa", RBDFunction.FD), t)
        b.add(_req("hyq", RBDFunction.ID), t)
        flushes = b.poll_expired(t + 1.0)
        assert len(flushes) == 2
        assert b.stats.flushed_merged == 0

    def test_merge_respects_max_batch(self):
        b = DynamicBatcher(BatchPolicy(max_batch=3, max_wait_s=1.0,
                                       coalesce=True))
        t = 0.0
        for k in range(2):
            b.add(_req("iiwa", seed=k), t)
        for k in range(2):
            b.add(_req("hyq", seed=k), t)
        flushes = b.poll_expired(t + 1.0)
        # 2 + 2 > max_batch: the queues must flush separately.
        assert sorted(len(f) for f in flushes) == [2, 2]
        assert b.stats.flushed_merged == 0

    def test_drain_coalesces(self):
        b = DynamicBatcher(self.POLICY)
        b.add(_req("iiwa"), 0.0)
        b.add(_req("hyq"), 0.0)
        flushes = b.drain()
        assert len(flushes) == 1 and len(flushes[0]) == 2
        assert b.stats.flushed_drain == 1
        assert b.stats.flushed_merged == 1

    def test_flush_on_full_stays_per_key(self):
        b = DynamicBatcher(BatchPolicy(max_batch=2, max_wait_s=1.0,
                                       coalesce=True))
        b.add(_req("iiwa"), 0.0)
        b.add(_req("hyq"), 0.0)
        batch = b.add(_req("iiwa", seed=1), 0.0)
        assert batch is not None
        assert [r.robot for r in batch] == ["iiwa", "iiwa"]
        assert b.stats.flushed_merged == 0

    def test_fragmentation_view(self):
        b = DynamicBatcher(self.POLICY)
        b.add(_req("iiwa"), 0.0)
        b.add(_req("hyq"), 0.0)
        frag = b.fragmentation()
        assert frag["active_queues"] == 2
        assert frag["flushed_batches"] == 0
        b.poll_expired(1.0)
        frag = b.fragmentation()
        assert frag["active_queues"] == 0
        assert frag["flushed_batches"] == 1
        assert frag["queues_flushed"] == 2
        assert frag["queues_per_flush"] == 2.0

    def test_coalesce_off_keeps_old_behaviour(self):
        b = DynamicBatcher(BatchPolicy(max_batch=64, max_wait_s=1.0,
                                       coalesce=False))
        b.add(_req("iiwa"), 0.0)
        b.add(_req("hyq"), 0.0)
        flushes = b.poll_expired(1.0)
        assert len(flushes) == 2
        assert b.stats.flushed_merged == 0
        assert b.fragmentation()["queues_per_flush"] == 1.0


ROBOTS = ("iiwa", "double_pendulum")


def _mixed_inputs(n_per_robot=4, seed=5):
    rng = np.random.default_rng(seed)
    inputs = []
    for _ in range(n_per_robot):
        for robot in ROBOTS:
            nv = load_robot(robot).nv
            inputs.append((robot, rng.standard_normal(nv),
                           rng.standard_normal(nv), rng.standard_normal(nv)))
    return inputs


def _serve(inputs, coalesce: bool):
    policy = BatchPolicy(max_batch=64, max_wait_s=2e-3, coalesce=coalesce)
    with DynamicsService(policy=policy, n_shards=1) as service:
        futures = [service.submit(robot, RBDFunction.FD, q, qd, u)
                   for robot, q, qd, u in inputs]
        results = [f.result(timeout=60) for f in futures]
        stats = service.stats()
        events = service.pool.placement_events()
    return results, stats, events


class TestServiceRagged:
    def test_coalesced_results_identical_to_fragmented(self):
        inputs = _mixed_inputs()
        frag_results, frag_stats, frag_events = _serve(inputs,
                                                       coalesce=False)
        coal_results, coal_stats, events = _serve(inputs, coalesce=True)
        for a, b in zip(frag_results, coal_results):
            assert a.robot == b.robot
            np.testing.assert_array_equal(np.asarray(a.value),
                                          np.asarray(b.value))
        # The coalesced run actually merged and executed ragged batches.
        assert coal_stats["flushed_merged"] >= 1
        assert coal_stats["ragged_batches"] >= 1
        assert coal_stats["ragged_segments"] >= 2
        assert coal_stats["queues_per_flush"] > 1.0
        assert frag_stats["ragged_batches"] == 0
        assert frag_stats["flushed_merged"] == 0
        # Placement events are segment-aware: the coalesced run placed a
        # multi-segment batch, the fragmented run never did.
        assert any(e["segments"] >= 2 for e in events)
        assert all(e["segments"] == 1 for e in frag_events)

    def test_ragged_results_modeled_per_segment(self):
        """Each request's modeled latency comes from its own robot's
        profile, not a batch-wide blend."""
        inputs = _mixed_inputs(n_per_robot=2)
        results, _, _ = _serve(inputs, coalesce=True)
        by_robot = {}
        for r in results:
            by_robot.setdefault(r.robot, set()).add(
                r.modeled_latency_cycles
            )
        # Same robot, same segment size -> one modeled latency; the two
        # robots must not share one (iiwa's 7-DOF pipeline is costlier
        # than the pendulum's 2-DOF one).
        assert by_robot["iiwa"] != by_robot["double_pendulum"]

    def test_telemetry_exposes_fragmentation_and_ragged_series(self):
        inputs = _mixed_inputs(n_per_robot=2)
        policy = BatchPolicy(max_batch=64, max_wait_s=2e-3, coalesce=True)
        with DynamicsService(policy=policy, n_shards=1) as service:
            for robot, q, qd, u in inputs:
                service.submit(robot, RBDFunction.FD, q, qd, u)
            service.flush()
            text = service.telemetry().prometheus()
        for series in ("batcher_fragmentation", "batcher_queues_per_flush",
                       "serve_flushed_merged_total", "ragged_batches_total",
                       "ragged_rows_total", "ragged_segments_total"):
            assert series in text, series


class TestShardAcceleratorOverride:
    def test_describe_tags(self):
        assert accelerator_desc(None) == ""
        half = PAPER_CONFIG.with_(clock_hz=62.5e6)
        assert accelerator_desc(half) == "62.5MHz/II10"
        fat = PAPER_CONFIG.with_(ii_target_heavy_cycles=20, sap_replicas=2)
        assert accelerator_desc(fat) == "125MHz/II10+20x2"

    def test_override_drives_modeled_latency_and_events(self):
        half = PAPER_CONFIG.with_(clock_hz=PAPER_CONFIG.clock_hz / 2)
        service = DynamicsService(
            n_shards=1, shard_configs=[ShardConfig(accelerator=half)]
        )
        try:
            nv = load_robot("iiwa").nv
            result = service.submit(
                "iiwa", RBDFunction.FD, np.zeros(nv), np.zeros(nv),
                np.zeros(nv), urgent=True,
            ).result(timeout=60)
            rows = service.pool.describe()
            events = service.pool.placement_events()
        finally:
            service.close()
        # Modeled seconds use the override clock, not the service config.
        assert result.modeled_latency_s == pytest.approx(
            result.modeled_latency_cycles / half.clock_hz
        )
        assert result.modeled_latency_s > 0
        assert rows[0]["accelerator"] == accelerator_desc(half)
        assert events and events[0]["accelerator"] == accelerator_desc(half)

    def test_default_shards_share_service_cache(self):
        service = DynamicsService(n_shards=2)
        try:
            assert service._shard_caches[0] is service.cache
            assert service._shard_caches[1] is service.cache
        finally:
            service.close()

    def test_override_shards_share_cache_per_config(self):
        half = PAPER_CONFIG.with_(clock_hz=62.5e6)
        service = DynamicsService(shard_configs=[
            ShardConfig(accelerator=half), ShardConfig(accelerator=half),
            ShardConfig(),
        ])
        try:
            assert service._shard_caches[0] is service._shard_caches[1]
            assert service._shard_caches[0] is not service.cache
            assert service._shard_caches[2] is service.cache
        finally:
            service.close()
