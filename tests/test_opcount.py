"""Tests for the shared op-count model."""

import pytest

from repro.dynamics.functions import RBDFunction
from repro.dynamics.opcount import (
    OpCountParams,
    derivative_columns,
    function_ops,
    ops_aba,
    ops_db,
    ops_df,
    ops_drnea,
    ops_mb,
    ops_mf,
    ops_rb,
    ops_rf,
    ops_rnea,
    right_columns,
    subtree_columns,
    without_sparsity,
)
from repro.model.library import atlas, hyq, iiwa, pendulum


class TestColumnCounts:
    def test_derivative_columns_grow_down_chain(self):
        model = iiwa()
        cols = [derivative_columns(model, i) for i in range(7)]
        assert cols == [2 * (i + 1) for i in range(7)]

    def test_subtree_columns_shrink_down_chain(self):
        model = iiwa()
        cols = [subtree_columns(model, i) for i in range(7)]
        assert cols == sorted(cols, reverse=True)
        assert cols[0] == model.nv

    def test_right_columns_at_root(self):
        model = hyq()
        assert right_columns(model, 0) == model.nv

    def test_branch_columns_limited_to_supports(self):
        model = hyq()
        leg_tip = model.link_index("rh_kfe")
        # 6 base + 3 leg DOF, times 2 for (q, qd).
        assert derivative_columns(model, leg_tip) == 2 * 9


class TestPerSubmoduleCounts:
    def test_all_positive(self):
        model = hyq()
        for i in range(model.nb):
            for fn in (ops_rf, ops_rb, ops_df, ops_db, ops_mf):
                assert fn(model, i) > 0
            assert ops_mb(model, i) > 0

    def test_df_exceeds_rf(self):
        model = iiwa()
        assert ops_df(model, 6) > ops_rf(model, 6)

    def test_dense_exceeds_sparse(self):
        model = iiwa()
        dense = without_sparsity()
        for i in range(model.nb):
            assert ops_rf(model, i, dense) > ops_rf(model, i)

    def test_mb_minv_exceeds_m(self):
        model = iiwa()
        assert ops_mb(model, 2, out_minv=True) > ops_mb(model, 2, out_minv=False)


class TestFunctionTotals:
    def test_ordering_of_functions(self):
        """dFD > dID > FD > ID in total work, for every robot."""
        for builder in (iiwa, hyq, atlas):
            model = builder()
            ops = {
                f: function_ops(model, f)
                for f in (RBDFunction.ID, RBDFunction.FD, RBDFunction.DID,
                          RBDFunction.DFD)
            }
            assert ops[RBDFunction.DFD] > ops[RBDFunction.DID]
            assert ops[RBDFunction.DID] > ops[RBDFunction.ID]
            assert ops[RBDFunction.FD] > ops[RBDFunction.ID]

    def test_software_fd_uses_aba(self):
        model = iiwa()
        assert function_ops(model, RBDFunction.FD, software=True) == (
            pytest.approx(ops_aba(model))
        )

    def test_hardware_fd_uses_minv_route(self):
        model = iiwa()
        hw = function_ops(model, RBDFunction.FD, software=False)
        assert hw > ops_rnea(model)

    def test_totals_scale_with_robot_size(self):
        for f in (RBDFunction.ID, RBDFunction.DID, RBDFunction.MINV):
            assert function_ops(atlas(), f) > function_ops(hyq(), f) > (
                function_ops(iiwa(), f)
            )

    def test_pendulum_is_tiny(self):
        assert function_ops(pendulum(), RBDFunction.ID) < 500

    def test_drnea_scales_superlinearly(self):
        """Total dRNEA work grows faster than NB (column widths grow too)."""
        small, big = iiwa(), atlas()
        ratio_nb = big.nb / small.nb
        ratio_ops = ops_drnea(big) / ops_drnea(small)
        assert ratio_ops > 1.5 * ratio_nb

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            function_ops(iiwa(), "nope")  # type: ignore[arg-type]


class TestParams:
    def test_custom_params_flow_through(self):
        model = iiwa()
        heavy = OpCountParams(matvec_x_sparse=100.0)
        assert ops_rnea(model, heavy) > ops_rnea(model)

    def test_without_sparsity_only_toggles_flag(self):
        params = without_sparsity()
        assert params.sparse_x is False
        assert params.matvec_inertia == OpCountParams().matvec_inertia
