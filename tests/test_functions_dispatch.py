"""Tests for the unified Table-I dispatch and the robot library."""

import numpy as np
import pytest

from repro.dynamics.functions import (
    DERIVATIVE_FUNCTIONS,
    RBDFunction,
    evaluate,
    forward_dynamics,
)
from repro.dynamics.rnea import rnea
from repro.model.library import ROBOT_REGISTRY, iiwa, load_robot


class TestDispatch:
    def test_id_dispatch(self, rng):
        model = iiwa()
        q, qd = model.random_state(rng)
        qdd = rng.normal(size=model.nv)
        got = evaluate(model, RBDFunction.ID, q, qd, qdd)
        assert np.allclose(got, rnea(model, q, qd, qdd))

    def test_defaults_to_zero_vectors(self, rng):
        model = iiwa()
        q = model.random_q(rng)
        got = evaluate(model, RBDFunction.ID, q)
        assert np.allclose(got, rnea(model, q, np.zeros(7), np.zeros(7)))

    def test_m_ignores_velocity(self, rng):
        model = iiwa()
        q = model.random_q(rng)
        m1 = evaluate(model, RBDFunction.M, q, rng.normal(size=7))
        m2 = evaluate(model, RBDFunction.M, q)
        assert np.allclose(m1, m2)

    def test_difd_accepts_precomputed_minv(self, rng):
        from repro.dynamics.mminv import mass_matrix_inverse

        model = iiwa()
        q, qd = model.random_state(rng)
        tau = rng.normal(size=7)
        qdd, minv = forward_dynamics(model, q, qd, tau, return_minv=True)
        with_minv = evaluate(
            model, RBDFunction.DIFD, q, qd, qdd, minv=minv
        )
        without = evaluate(model, RBDFunction.DIFD, q, qd, qdd)
        assert np.allclose(with_minv.dqdd_dq, without.dqdd_dq, atol=1e-9)
        assert np.allclose(minv, mass_matrix_inverse(model, q), atol=1e-9)

    def test_derivative_functions_set(self):
        assert RBDFunction.DID in DERIVATIVE_FUNCTIONS
        assert RBDFunction.ID not in DERIVATIVE_FUNCTIONS

    def test_unknown_function_rejected(self, rng):
        model = iiwa()
        with pytest.raises(ValueError):
            evaluate(model, "bogus", model.neutral_q())  # type: ignore

    def test_every_function_dispatches(self, rng):
        model = iiwa()
        q, qd = model.random_state(rng)
        other = rng.normal(size=model.nv)
        for f in RBDFunction:
            result = evaluate(model, f, q, qd, other)
            assert result is not None


class TestLibraryRegistry:
    def test_registry_builds_everything(self):
        for name in ROBOT_REGISTRY:
            model = load_robot(name)
            assert model.nb >= 1

    def test_load_robot_unknown(self):
        with pytest.raises(KeyError, match="unknown robot"):
            load_robot("terminator")

    @pytest.mark.parametrize("name", sorted(ROBOT_REGISTRY))
    def test_all_library_robots_have_valid_inertias(self, name):
        model = load_robot(name)
        total_mass = sum(link.inertia.mass for link in model.links)
        assert total_mass > 0
        for link in model.links:
            if link.inertia.mass > 0:
                assert link.inertia.is_physical(), link.name

    @pytest.mark.parametrize("name", sorted(ROBOT_REGISTRY))
    def test_all_library_robots_simulate(self, name, rng):
        """Every library robot survives one FD step without blow-up."""
        model = load_robot(name)
        q, qd = model.random_state(rng, velocity_scale=0.1)
        qdd = forward_dynamics(model, q, qd, np.zeros(model.nv))
        assert np.all(np.isfinite(qdd))
        # Accelerations bounded by something sane for ~1 m scale robots.
        assert np.abs(qdd).max() < 1e4
