"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
