"""Tests for the paper's stated-but-unimplemented extensions we built:
ABA-on-the-BF-module FD (Section V-B4) and multi-SAP replication
(Section VI-A), plus the pipeline visualizer."""

import numpy as np
import pytest

from repro.core import DaduRBD, PAPER_CONFIG, TaskRequest
from repro.core.visualize import pipeline_timeline, trace_stages
from repro.core.sim import JobSpec
from repro.dynamics import forward_dynamics
from repro.dynamics.functions import RBDFunction
from repro.model.library import hyq, iiwa, serial_chain


@pytest.fixture(scope="module")
def aba_acc():
    return DaduRBD(iiwa(), PAPER_CONFIG.with_(enable_aba_fd=True))


@pytest.fixture(scope="module")
def base_acc():
    return DaduRBD(iiwa())


class TestAbaFd:
    def test_functional_result_matches_reference(self, aba_acc, rng):
        model = aba_acc.model
        q, qd = model.random_state(rng)
        tau = rng.normal(size=model.nv)
        got = aba_acc.compute(TaskRequest(RBDFunction.FD, q, qd, tau))
        want = forward_dynamics(model, q, qd, tau)
        assert np.allclose(got, want, atol=5e-3)

    def test_fd_graph_has_no_schedule_stage(self, aba_acc):
        from repro.core.modules import active_stage_names

        stages = active_stage_names(aba_acc.graph(RBDFunction.FD))
        assert "schedule:matvec" not in stages
        # ABA rides the Rf + Mb + Mf stages.
        assert any(s.startswith("Rf") for s in stages)
        assert any(s.startswith("Mb") for s in stages)
        assert any(s.startswith("Mf") for s in stages)

    def test_other_functions_unchanged(self, aba_acc, base_acc):
        for f in (RBDFunction.ID, RBDFunction.DID, RBDFunction.MINV):
            assert aba_acc.initiation_interval(f) == pytest.approx(
                base_acc.initiation_interval(f)
            )

    def test_area_cost_of_the_option(self, aba_acc, base_acc):
        """The paper skipped ABA "due to resource constraints": hosting it
        must never shrink the BF stages, and typically grows them."""
        assert aba_acc.resources().dsp >= base_acc.resources().dsp

    def test_fd_timing_is_finite_and_pipelined(self, aba_acc):
        latency = aba_acc.latency_seconds(RBDFunction.FD)
        ii = aba_acc.initiation_interval(RBDFunction.FD)
        assert 0 < ii * aba_acc.config.cycles_to_seconds(1) < latency


class TestMultiSap:
    def test_throughput_scales_with_replicas(self):
        small = serial_chain(3, seed=1)
        thr = []
        for replicas in (1, 2, 3):
            acc = DaduRBD(small, PAPER_CONFIG.with_(sap_replicas=replicas))
            thr.append(acc.throughput_tasks_per_s(RBDFunction.DID, 256))
        assert thr[1] == pytest.approx(2 * thr[0], rel=0.05)
        assert thr[2] == pytest.approx(3 * thr[0], rel=0.05)

    def test_resources_scale_with_replicas(self):
        small = serial_chain(3, seed=1)
        one = DaduRBD(small, PAPER_CONFIG.with_(sap_replicas=1)).resources()
        two = DaduRBD(small, PAPER_CONFIG.with_(sap_replicas=2)).resources()
        assert two.dsp > 1.8 * (one.dsp - 120.0)  # minus shared base

    def test_replicated_build_still_fits(self):
        small = serial_chain(3, seed=1)
        acc = DaduRBD(small, PAPER_CONFIG.with_(sap_replicas=3))
        report = acc.resources()
        assert report.dsp_utilization <= acc.config.dsp_budget + 1e-9

    def test_latency_unchanged_by_replication(self):
        small = serial_chain(3, seed=1)
        one = DaduRBD(small, PAPER_CONFIG.with_(sap_replicas=1))
        two = DaduRBD(small, PAPER_CONFIG.with_(sap_replicas=2))
        if one.config.heavy_ii_cycles == two.config.heavy_ii_cycles:
            assert two.latency_cycles(RBDFunction.ID) == pytest.approx(
                one.latency_cycles(RBDFunction.ID)
            )

    def test_power_scales_with_replicas(self):
        small = serial_chain(3, seed=1)
        one = DaduRBD(small, PAPER_CONFIG.with_(sap_replicas=1))
        two = DaduRBD(small, PAPER_CONFIG.with_(sap_replicas=2))
        assert two.power_w(RBDFunction.ID) > one.power_w(RBDFunction.ID)

    def test_invalid_replicas_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PAPER_CONFIG.with_(sap_replicas=0)


class TestVisualization:
    def test_timeline_renders(self, base_acc):
        art = pipeline_timeline(base_acc.graph(RBDFunction.ID), n_jobs=3)
        assert "Rf:A0[0]" in art
        assert "|" in art and "0" in art

    def test_round_trip_visible(self, base_acc):
        """Forward stages go busy before their backward counterparts."""
        traces, _ = trace_stages(
            base_acc.graph(RBDFunction.ID), [JobSpec()],
        )
        first_busy = {
            t.stage: t.intervals[0][0] for t in traces if t.intervals
        }
        assert first_busy["Rf:A0[6]"] < first_busy["Rb:A0[6]"]
        assert first_busy["Rb:A0[6]"] < first_busy["Rb:A0[0]"]

    def test_empty_graph_handled(self):
        from repro.core.visualize import render_timeline

        assert "empty" in render_timeline([], 0.0)

    def test_hyq_multiplexed_legs_share_rows(self):
        acc = DaduRBD(hyq())
        art = pipeline_timeline(acc.graph(RBDFunction.ID), n_jobs=2)
        # Fewer distinct Rf rows than links: legs share arrays.
        rf_rows = [line for line in art.splitlines() if "Rf:" in line]
        assert len(rf_rows) < acc.org.timing_model.nb
