"""Unit tests for spatial inertia."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.spatial.inertia import SpatialInertia
from repro.spatial.random import random_inertia, random_rotation
from repro.spatial.transforms import spatial_transform


class TestConstruction:
    def test_point_mass_at_origin(self):
        inertia = SpatialInertia(2.0, np.zeros(3), 0.1 * np.eye(3))
        m = inertia.matrix()
        assert np.allclose(m[3:, 3:], 2.0 * np.eye(3))
        assert np.allclose(m[:3, 3:], 0)

    def test_matrix_symmetric(self, rng):
        m = random_inertia(rng).matrix()
        assert np.allclose(m, m.T)

    def test_matrix_positive_definite(self, rng):
        for _ in range(10):
            m = random_inertia(rng).matrix()
            assert np.all(np.linalg.eigvalsh(m) > 0)

    def test_from_matrix_roundtrip(self, rng):
        inertia = random_inertia(rng)
        back = SpatialInertia.from_matrix(inertia.matrix())
        assert np.isclose(back.mass, inertia.mass)
        assert np.allclose(back.com, inertia.com)
        assert np.allclose(back.inertia_com, inertia.inertia_com)

    def test_from_matrix_rejects_zero_mass(self):
        with pytest.raises(ModelError):
            SpatialInertia.from_matrix(np.zeros((6, 6)))

    def test_bad_shapes_rejected(self):
        with pytest.raises(ModelError):
            SpatialInertia(1.0, np.zeros(2), np.eye(3))
        with pytest.raises(ModelError):
            SpatialInertia(1.0, np.zeros(3), np.eye(4))


class TestPhysicality:
    def test_random_inertias_physical(self, rng):
        for _ in range(20):
            assert random_inertia(rng).is_physical()

    def test_triangle_inequality_violation(self):
        bad = SpatialInertia(1.0, np.zeros(3), np.diag([1.0, 0.1, 0.1]))
        assert not bad.is_physical()

    def test_zero_is_not_physical(self):
        assert not SpatialInertia.zero().is_physical()


class TestTransformAndKineticEnergy:
    def test_kinetic_energy_invariant(self, rng):
        inertia = random_inertia(rng)
        x = spatial_transform(random_rotation(rng), rng.normal(size=3))
        v = rng.normal(size=6)
        ke_a = 0.5 * v @ inertia.matrix() @ v
        v_b = x @ v
        ke_b = 0.5 * v_b @ inertia.transform(x).matrix() @ v_b
        assert np.isclose(ke_a, ke_b)

    def test_transform_preserves_mass(self, rng):
        inertia = random_inertia(rng)
        x = spatial_transform(random_rotation(rng), rng.normal(size=3))
        assert np.isclose(inertia.transform(x).mass, inertia.mass)

    def test_congruence_matches_transform(self, rng):
        # I_B = X^{-T} I_A X^{-1} for X = ^BX_A.
        from repro.spatial.transforms import inverse_transform

        inertia = random_inertia(rng)
        x = spatial_transform(random_rotation(rng), rng.normal(size=3))
        xinv = inverse_transform(x)
        assert np.allclose(
            inertia.transform(x).matrix(), xinv.T @ inertia.matrix() @ xinv
        )


class TestAddition:
    def test_add_masses(self, rng):
        a, b = random_inertia(rng), random_inertia(rng)
        assert np.isclose((a + b).mass, a.mass + b.mass)

    def test_add_matrices(self, rng):
        a, b = random_inertia(rng), random_inertia(rng)
        assert np.allclose((a + b).matrix(), a.matrix() + b.matrix())

    def test_add_zero(self, rng):
        a = random_inertia(rng)
        total = a + SpatialInertia.zero()
        assert np.allclose(total.matrix(), a.matrix())
