"""Tests for the Structure-Adaptive Pipeline organization (Section V-C)."""

import pytest

from repro.core.config import PAPER_CONFIG, SAPConfig
from repro.core.costmodel import SubmoduleKind
from repro.core.saps import organize
from repro.model.library import atlas, hyq, iiwa, quadruped_arm, spot_arm, tiago


class TestOrganizeIiwa:
    def test_single_root_array(self):
        org = organize(iiwa(), PAPER_CONFIG)
        assert len(org.arrays) == 1
        assert org.arrays[0].is_root
        assert org.arrays[0].multiplex == 1
        assert org.rerooted_at is None
        assert not org.floating_split

    def test_stage_keys_unique_per_link(self):
        org = organize(iiwa(), PAPER_CONFIG)
        keys = {org.stage_key(SubmoduleKind.RF, i) for i in range(7)}
        assert len(keys) == 7


class TestOrganizeHyq:
    def test_paper_fig11b_grouping(self):
        """Fig 11b: four symmetric legs served by two arrays (x2 each)."""
        org = organize(hyq(), PAPER_CONFIG)
        leg_arrays = [a for a in org.arrays if not a.is_root]
        assert len(leg_arrays) == 2
        assert all(a.multiplex == 2 for a in leg_arrays)

    def test_floating_base_split(self):
        org = organize(hyq(), PAPER_CONFIG)
        assert org.floating_split
        assert org.timing_model.nb == hyq().nb + 1

    def test_no_sharing_when_disabled(self):
        config = PAPER_CONFIG.with_(
            sap=SAPConfig(share_symmetric_branches=False)
        )
        org = organize(hyq(), config)
        leg_arrays = [a for a in org.arrays if not a.is_root]
        assert len(leg_arrays) == 4
        assert all(a.multiplex == 1 for a in leg_arrays)

    def test_multiplexed_legs_share_stages(self):
        org = organize(hyq(), PAPER_CONFIG)
        model = org.timing_model
        lf = model.link_index("lf_haa")
        rf = model.link_index("rf_haa")
        assert org.stage_key(SubmoduleKind.RF, lf) == org.stage_key(
            SubmoduleKind.RF, rf
        )

    def test_multiplex_factor_exposed(self):
        org = organize(hyq(), PAPER_CONFIG)
        model = org.timing_model
        assert org.multiplex(model.link_index("lf_kfe")) == 2
        assert org.multiplex(0) == 1


class TestOrganizeAtlas:
    def test_rerooted_at_torso(self):
        """Fig 11c: Atlas is re-rooted to balance the tree."""
        org = organize(atlas(), PAPER_CONFIG)
        assert org.rerooted_at == "torso2"
        # Depth 11 -> 9 before the floating-base split adds one link.
        assert org.timing_model.max_depth() <= 10

    def test_arms_and_legs_paired(self):
        org = organize(atlas(), PAPER_CONFIG)
        paired = [a for a in org.arrays if a.multiplex == 2]
        assert len(paired) == 2          # arms array + legs array

    def test_no_reroot_when_disabled(self):
        config = PAPER_CONFIG.with_(sap=SAPConfig(reroot_tree=False))
        org = organize(atlas(), config)
        assert org.rerooted_at is None


class TestOrganizeOthers:
    def test_tiago_linear_no_split(self):
        # Tiago has no floating base (prismatic root): nothing to split.
        org = organize(tiago(), PAPER_CONFIG)
        assert not org.floating_split
        assert len(org.arrays) == 1

    def test_quadruped_arm_matches_paper(self):
        """Fig 3 robot: four legs paired onto two multiplexed arrays; the
        long arm chain drives a re-rooting that trims the tree depth."""
        org = organize(quadruped_arm(), PAPER_CONFIG)
        multiplexed = [a for a in org.arrays if a.multiplex == 2]
        assert len(multiplexed) == 2
        if org.rerooted_at is not None:
            before, after = org.reroot_depths
            assert after < before

    def test_spot_arm_grouping(self):
        org = organize(spot_arm(), PAPER_CONFIG)
        assert max(a.multiplex for a in org.arrays) == 2


class TestOrganizationInvariants:
    @pytest.mark.parametrize("builder", [iiwa, hyq, atlas, quadruped_arm, tiago])
    def test_every_link_mapped(self, builder):
        org = organize(builder(), PAPER_CONFIG)
        model = org.timing_model
        for link in range(model.nb):
            for kind in SubmoduleKind:
                assert org.stage_key(kind, link)
            assert org.multiplex(link) >= 1

    @pytest.mark.parametrize("builder", [hyq, atlas, quadruped_arm])
    def test_array_ids_dense(self, builder):
        org = organize(builder(), PAPER_CONFIG)
        ids = [a.array_id for a in org.arrays]
        assert ids == list(range(len(ids)))

    def test_describe_mentions_structure(self):
        org = organize(atlas(), PAPER_CONFIG)
        text = org.describe()
        assert "re-rooted" in text
        assert "x2" in text
