"""Tests for inverse kinematics and the design-space exploration."""

import numpy as np
import pytest

from repro.core.explore import (
    DesignPoint,
    best_feasible_point,
    sweep_design_space,
)
from repro.dynamics.ik import point_ik
from repro.dynamics.kinematics import forward_kinematics
from repro.model.library import hyq, iiwa


class TestPointIK:
    def test_reaches_reachable_target(self, rng):
        model = iiwa()
        q_true = 0.6 * model.random_q(rng)
        fk = forward_kinematics(model, q_true)
        target = fk.link_position(model.nb - 1)
        result = point_ik(model, model.nb - 1, target)
        assert result.converged
        assert result.error < 1e-4

    def test_offset_point(self, rng):
        model = iiwa()
        q_true = 0.5 * model.random_q(rng)
        offset = np.array([0.0, 0.0, 0.1])
        fk = forward_kinematics(model, q_true)
        target = fk.link_position(6) + fk.link_rotation(6) @ offset
        result = point_ik(model, 6, target, point_local=offset)
        assert result.converged

    def test_unreachable_target_reports_failure(self):
        model = iiwa()
        result = point_ik(
            model, model.nb - 1, np.array([10.0, 0.0, 0.0]),
            max_iterations=50,
        )
        assert not result.converged
        assert result.error > 1.0

    def test_floating_base_ik(self, rng):
        """With a floating base any target is reachable (base translates)."""
        model = hyq()
        target = np.array([2.0, 1.0, 0.5])
        result = point_ik(
            model, model.link_index("lf_kfe"), target, max_iterations=400,
        )
        assert result.converged

    def test_warm_start_faster(self, rng):
        model = iiwa()
        q_true = 0.5 * model.random_q(rng)
        fk = forward_kinematics(model, q_true)
        target = fk.link_position(6)
        cold = point_ik(model, 6, target)
        warm = point_ik(model, 6, target, q0=q_true)
        assert warm.iterations <= cold.iterations


class TestDesignSpace:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_design_space(iiwa(), candidates=(8, 10, 16, 32, 64))

    def test_throughput_monotone_in_ii(self, points):
        thr = [p.throughput_tasks_per_s for p in points]
        assert thr == sorted(thr, reverse=True)

    def test_area_monotone_in_ii(self, points):
        dsp = [p.dsp_utilization for p in points]
        assert dsp == sorted(dsp, reverse=True)

    def test_paper_design_point_is_best_feasible_edp(self, points):
        """The shipped II=10 build minimizes EDP among feasible points —
        the paper's 'performance and energy reach a balance'."""
        best = best_feasible_point(points)
        assert best.heavy_ii_cycles == 10

    def test_infeasible_points_flagged(self, points):
        assert any(not p.fits for p in points)
        assert any(p.fits for p in points)

    def test_no_feasible_raises(self):
        bogus = [DesignPoint(8, 2.0, False, 1.0, 1.0, 1.0)]
        with pytest.raises(ValueError):
            best_feasible_point(bogus)
