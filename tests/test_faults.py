"""Tests for the repro.faults injection framework itself."""

import threading

import pytest

from repro import faults
from repro.faults import (
    FaultAction,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    injected,
)


class TestFaultSpec:
    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("s", kind="meteor")
        with pytest.raises(ValueError):
            FaultSpec("s", rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec("s", rate=-0.1)
        with pytest.raises(ValueError):
            FaultSpec("s", latency_s=-1.0)
        with pytest.raises(ValueError):
            FaultSpec("s", max_faults=-1)

    def test_duplicate_site_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector([FaultSpec("a"), FaultSpec("a")])


class TestFaultInjector:
    def test_unarmed_site_never_fires(self):
        inj = FaultInjector([FaultSpec("armed")])
        assert inj.fire("other") is None
        assert "other" not in inj.stats()

    def test_rate_one_always_fires(self):
        inj = FaultInjector([FaultSpec("s", rate=1.0)])
        actions = [inj.fire("s") for _ in range(5)]
        assert all(a is not None for a in actions)
        assert [a.sequence for a in actions] == [1, 2, 3, 4, 5]

    def test_deterministic_across_seeds(self):
        def decisions(seed):
            inj = FaultInjector([FaultSpec("s", rate=0.5)], seed=seed)
            return [inj.fire("s") is not None for _ in range(64)]

        a, b = decisions(7), decisions(7)
        assert a == b
        assert any(a)                   # rate 0.5 over 64 draws: some hit
        assert not all(a)               # ... and some miss
        assert decisions(8) != a        # a different seed reshuffles

    def test_deterministic_fire_count_across_threads(self):
        """Thread interleaving must not change how many faults fire."""
        def total_fired(n_threads):
            inj = FaultInjector([FaultSpec("s", rate=0.5)], seed=3)
            per_thread = 40

            def worker():
                for _ in range(per_thread):
                    inj.fire("s")

            threads = [threading.Thread(target=worker)
                       for _ in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return inj.stats()["s"]["fired"]

        assert total_fired(1) * 4 == total_fired(4)

    def test_max_faults_caps_firing(self):
        inj = FaultInjector([FaultSpec("s", max_faults=2)])
        assert inj.fire("s") is not None
        assert inj.fire("s") is not None
        assert inj.fire("s") is None
        stats = inj.stats()["s"]
        assert stats == {"calls": 3, "fired": 2}

    def test_exception_kind_raises_injected_fault(self):
        inj = FaultInjector([FaultSpec("s", retryable=False)])
        action = inj.fire("s")
        with pytest.raises(InjectedFault) as err:
            action.apply()
        assert err.value.site == "s"
        assert err.value.retryable is False
        assert err.value.sequence == 1

    def test_latency_kind_sleeps_and_returns_none(self):
        inj = FaultInjector([FaultSpec("s", kind="latency", latency_s=0.0)])
        assert inj.fire("s").apply() is None

    def test_worker_kill_kind_returned_unhandled(self):
        inj = FaultInjector([FaultSpec("s", kind="worker_kill")])
        action = inj.fire("s").apply()
        assert isinstance(action, FaultAction)
        assert action.kind == "worker_kill"


class TestSwitchboard:
    def test_disabled_by_default(self):
        assert faults.enabled is False
        assert faults.fire("shard.execute") is None
        assert faults.check("shard.execute") is None

    def test_injected_context_arms_and_restores(self):
        assert faults.active_injector() is None
        with injected(FaultSpec("s")) as inj:
            assert faults.enabled is True
            assert faults.active_injector() is inj
            with pytest.raises(InjectedFault):
                faults.check("s")
        assert faults.enabled is False
        assert faults.active_injector() is None

    def test_injected_restores_previous_injector(self):
        outer = FaultInjector([FaultSpec("outer")])
        faults.install(outer)
        try:
            with injected(FaultSpec("inner")):
                assert faults.active_injector() is not outer
            assert faults.active_injector() is outer
            assert faults.enabled is True
        finally:
            faults.uninstall()

    def test_injected_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with injected(FaultSpec("s")):
                raise RuntimeError("boom")
        assert faults.enabled is False
