"""Tests for forward kinematics, Jacobians and energies."""

import numpy as np

from repro.dynamics.kinematics import (
    center_of_mass,
    forward_kinematics,
    kinetic_energy,
    link_jacobian,
    potential_energy,
    velocity_of_point,
)
from repro.model.library import double_pendulum, hyq, iiwa, pendulum
from repro.spatial.transforms import is_spatial_transform


class TestForwardKinematics:
    def test_world_transforms_valid(self, any_robot, rng):
        q = any_robot.random_q(rng)
        fk = forward_kinematics(any_robot, q)
        for x in fk.world_transforms:
            assert is_spatial_transform(x)

    def test_pendulum_tip_height(self):
        model = pendulum(length=1.0)
        # At q=0 the rod hangs along +z of the link frame; rotate by pi/2
        # about y and the frame origin stays at the world origin.
        fk = forward_kinematics(model, np.array([np.pi / 2]))
        assert np.allclose(fk.link_position(0), np.zeros(3), atol=1e-12)

    def test_double_pendulum_chain_position(self):
        model = double_pendulum(lengths=(1.0, 0.8))
        fk = forward_kinematics(model, np.zeros(2))
        # Second link frame sits one upper-length along z.
        assert np.allclose(fk.link_position(1), [0.0, 0.0, 1.0], atol=1e-12)

    def test_velocity_composition(self, rng):
        model = iiwa()
        q, qd = model.random_state(rng)
        fk = forward_kinematics(model, q, qd)
        # Velocity of link i must equal J_i(q) qd.
        for i in range(model.nb):
            jac = link_jacobian(model, q, i)
            assert np.allclose(jac @ qd, fk.velocities[i], atol=1e-9)


class TestJacobian:
    def test_column_sparsity(self, rng):
        # Only supporting joints contribute (incremental column property).
        model = hyq()
        q = model.random_q(rng)
        leg_tip = model.link_index("rh_kfe")
        jac = link_jacobian(model, q, leg_tip)
        support = set(model.supporting_dofs(leg_tip))
        for col in range(model.nv):
            if col not in support:
                assert np.allclose(jac[:, col], 0.0)

    def test_finite_difference_linear_velocity(self, rng):
        model = iiwa()
        q = model.random_q(rng)
        qd = rng.normal(size=model.nv)
        point = np.array([0.05, 0.0, 0.1])
        v = velocity_of_point(model, q, qd, model.nb - 1, point)
        eps = 1e-7

        def world_point(qq):
            fk = forward_kinematics(model, qq)
            return fk.link_position(model.nb - 1) + fk.link_rotation(
                model.nb - 1
            ) @ point

        numeric = (world_point(model.integrate(q, eps * qd))
                   - world_point(model.integrate(q, -eps * qd))) / (2 * eps)
        assert np.allclose(v, numeric, atol=1e-5)


class TestEnergies:
    def test_kinetic_energy_nonnegative(self, any_robot, rng):
        q, qd = any_robot.random_state(rng)
        assert kinetic_energy(any_robot, q, qd) >= 0.0

    def test_kinetic_energy_quadratic(self, rng):
        model = iiwa()
        q, qd = model.random_state(rng)
        ke1 = kinetic_energy(model, q, qd)
        ke2 = kinetic_energy(model, q, 2.0 * qd)
        assert np.isclose(ke2, 4.0 * ke1)

    def test_kinetic_energy_matches_mass_matrix(self, paper_robot, rng):
        from repro.dynamics.crba import crba

        q, qd = paper_robot.random_state(rng)
        ke = kinetic_energy(paper_robot, q, qd)
        assert np.isclose(ke, 0.5 * qd @ crba(paper_robot, q) @ qd, rtol=1e-9)

    def test_pendulum_potential_energy(self):
        model = pendulum(length=1.0, mass=2.0)
        # com at z = +0.5 when hanging (q=0).
        pe0 = potential_energy(model, np.zeros(1))
        pe1 = potential_energy(model, np.array([np.pi]))
        # Rotating by pi flips the com to z = -0.5: PE drops by m*g*1.0.
        assert np.isclose(pe0 - pe1, 2.0 * 9.80665 * 1.0, rtol=1e-9)

    def test_center_of_mass_neutral_iiwa(self):
        model = iiwa()
        com = center_of_mass(model, model.neutral_q())
        # A vertical arm: com on the z axis.
        assert np.allclose(com[:2], 0.0, atol=1e-9)
        assert com[2] > 0.0
