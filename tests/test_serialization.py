"""Tests for robot model serialization (round trips, files, errors)."""

import numpy as np
import pytest

from repro.dynamics.crba import crba
from repro.dynamics.rnea import rnea
from repro.errors import ModelError
from repro.model.joints import HelicalJoint, ScrewJoint
from repro.model.library import (
    atlas,
    hyq,
    iiwa,
    quadruped_arm,
    tiago,
)
from repro.model.serialization import (
    joint_from_dict,
    joint_to_dict,
    load_robot_file,
    robot_from_dict,
    robot_to_dict,
    save_robot,
)
from repro.model.topology import reroot

ALL_BUILDERS = [iiwa, hyq, atlas, quadruped_arm, tiago]


@pytest.mark.parametrize("builder", ALL_BUILDERS, ids=lambda b: b.__name__)
class TestRoundTrip:
    def test_structure_preserved(self, builder):
        model = builder()
        back = robot_from_dict(robot_to_dict(model))
        assert back.nb == model.nb
        assert back.nv == model.nv
        for i in range(model.nb):
            assert back.links[i].name == model.links[i].name
            assert back.parent(i) == model.parent(i)
            assert back.joint(i).type_name == model.joint(i).type_name

    def test_dynamics_identical(self, builder, rng):
        model = builder()
        back = robot_from_dict(robot_to_dict(model))
        q, qd = model.random_state(rng)
        qdd = rng.normal(size=model.nv)
        assert np.allclose(rnea(model, q, qd, qdd), rnea(back, q, qd, qdd))
        assert np.allclose(crba(model, q), crba(back, q))

    def test_json_serializable(self, builder):
        import json

        json.dumps(robot_to_dict(builder()))


class TestJointRoundTrip:
    @pytest.mark.parametrize("joint", [
        HelicalJoint(np.array([0.0, 1.0, 0.0]), pitch=0.3),
        ScrewJoint(np.array([0.0, 0.0, 1.0, 0.2, 0.0, 0.0])),
    ], ids=["helical", "screw"])
    def test_special_joints(self, joint, rng):
        back = joint_from_dict(joint_to_dict(joint))
        q = joint.random(rng)
        assert np.allclose(
            back.joint_transform(q), joint.joint_transform(q), atol=1e-12
        )

    def test_unknown_type_rejected(self):
        with pytest.raises(ModelError):
            joint_from_dict({"type": "warp-drive"})

    def test_rerooted_robot_round_trips(self, rng):
        """ScrewJoints produced by re-rooting serialize too."""
        model = reroot(atlas(), "torso2")
        back = robot_from_dict(robot_to_dict(model))
        q, qd = model.random_state(rng)
        qdd = rng.normal(size=model.nv)
        assert np.allclose(rnea(model, q, qd, qdd), rnea(back, q, qd, qdd))


class TestFiles:
    def test_save_and_load(self, tmp_path, rng):
        model = hyq()
        path = tmp_path / "hyq.json"
        save_robot(model, path)
        back = load_robot_file(path)
        q = model.random_q(rng)
        assert np.allclose(crba(model, q), crba(back, q))

    def test_gravity_preserved(self, tmp_path):
        model = iiwa()
        model.gravity = np.array([0.0, 0.0, 0.0, 0.0, 0.0, -1.62])  # moon
        path = tmp_path / "moon_iiwa.json"
        save_robot(model, path)
        back = load_robot_file(path)
        assert np.allclose(back.gravity, model.gravity)
