"""Tests for the discrete-event pipeline simulator."""

import pytest

from repro.core.sim import (
    DataflowGraph,
    JobSpec,
    analytic_batch_makespan,
    simulate,
)
from repro.errors import SimulationError


def linear_graph(services):
    """A simple chain, one stage per node."""
    graph = DataflowGraph("chain")
    prev = None
    for i, s in enumerate(services):
        graph.add_stage(f"s{i}", s)
        prev = graph.add_node(f"s{i}", () if prev is None else (prev,))
    return graph


class TestGraphConstruction:
    def test_duplicate_stage_rejected(self):
        graph = DataflowGraph()
        graph.add_stage("a", 1)
        with pytest.raises(SimulationError):
            graph.add_stage("a", 2)

    def test_bad_pred_rejected(self):
        graph = DataflowGraph()
        graph.add_stage("a", 1)
        with pytest.raises(SimulationError):
            graph.add_node("a", (5,))

    def test_unknown_stage_rejected(self):
        graph = DataflowGraph()
        with pytest.raises(SimulationError):
            graph.add_node("ghost")

    def test_ensure_stage_keeps_max(self):
        graph = DataflowGraph()
        graph.ensure_stage("a", 3)
        graph.ensure_stage("a", 7)
        graph.ensure_stage("a", 5)
        assert graph.stages["a"].service_cycles == 7

    def test_sources_and_sinks(self):
        graph = linear_graph([1, 2, 3])
        assert graph.sources() == [0]
        assert graph.sinks() == [2]

    def test_initiation_interval_is_bottleneck(self):
        graph = linear_graph([2, 9, 3])
        assert graph.initiation_interval() == 9

    def test_ii_sums_visits_on_shared_stage(self):
        # Two nodes on one stage: II doubles (SAP multiplexing / dFD reuse).
        graph = DataflowGraph()
        graph.add_stage("shared", 5)
        n0 = graph.add_node("shared")
        graph.add_node("shared", (n0,))
        assert graph.initiation_interval() == 10


class TestSingleJobLatency:
    def test_store_and_forward_latency(self):
        graph = linear_graph([3, 4, 5])
        result = simulate(graph, [JobSpec()], transfer_cycles=1,
                          startup_cycles=None)
        # 3 + 1 + 4 + 1 + 5 = 14
        assert result.latency(0) == 14

    def test_streaming_latency_shorter(self):
        graph = linear_graph([10, 10, 10])
        cold = simulate(graph, [JobSpec()], startup_cycles=None,
                        transfer_cycles=1).latency(0)
        streamed = simulate(graph, [JobSpec()], startup_cycles=2,
                            transfer_cycles=1).latency(0)
        assert streamed < cold
        # First data flows through 2 hops at (2+1) each, then the last
        # stage finishes its full service after its last input arrives.
        assert streamed == pytest.approx(10 + 1 + 2 + 1 + 2, abs=1e-9)

    def test_matches_critical_path(self):
        graph = linear_graph([3, 7, 2])
        for startup in (None, 2.0):
            sim = simulate(graph, [JobSpec()], transfer_cycles=1,
                           startup_cycles=startup)
            assert sim.latency(0) == pytest.approx(
                graph.critical_path_cycles(1, startup)
            )

    def test_release_cycle_respected(self):
        graph = linear_graph([2])
        result = simulate(graph, [JobSpec(release_cycle=100)])
        assert result.job_start[0] == 100
        assert result.job_finish[0] == 102


class TestThroughput:
    def test_measured_interval_matches_bottleneck(self):
        graph = linear_graph([2, 6, 3])
        result = simulate(graph, [JobSpec() for _ in range(64)])
        assert result.measured_interval() == pytest.approx(6, rel=0.05)

    def test_makespan_close_to_analytic(self):
        graph = linear_graph([2, 6, 3])
        n = 128
        sim = simulate(graph, [JobSpec() for _ in range(n)])
        analytic = analytic_batch_makespan(graph, n)
        assert sim.makespan == pytest.approx(analytic, rel=0.05)

    def test_utilization_of_bottleneck_near_one(self):
        graph = linear_graph([2, 6, 3])
        sim = simulate(graph, [JobSpec() for _ in range(200)])
        assert sim.utilization("s1") > 0.95
        assert sim.utilization("s0") < 0.5

    def test_in_order_completion_for_chain(self):
        graph = linear_graph([2, 4])
        sim = simulate(graph, [JobSpec() for _ in range(16)])
        finishes = sim.job_finish
        assert finishes == sorted(finishes)


class TestForkJoin:
    def test_join_waits_for_slowest(self):
        graph = DataflowGraph()
        graph.add_stage("src", 1)
        graph.add_stage("fast", 2)
        graph.add_stage("slow", 20)
        graph.add_stage("join", 1)
        s = graph.add_node("src")
        a = graph.add_node("fast", (s,))
        b = graph.add_node("slow", (s,))
        graph.add_node("join", (a, b))
        result = simulate(graph, [JobSpec()], transfer_cycles=0,
                          startup_cycles=None)
        assert result.latency(0) == 1 + 20 + 1

    def test_parallel_branches_overlap(self):
        # Two independent branches (like SAP branch arrays) add no latency.
        graph = DataflowGraph()
        graph.add_stage("src", 1)
        graph.add_stage("b1", 10)
        graph.add_stage("b2", 10)
        graph.add_stage("join", 1)
        s = graph.add_node("src")
        a = graph.add_node("b1", (s,))
        b = graph.add_node("b2", (s,))
        graph.add_node("join", (a, b))
        result = simulate(graph, [JobSpec()], transfer_cycles=0,
                          startup_cycles=None)
        assert result.latency(0) == 12


class TestJobDependencies:
    def test_serial_chain_jobs(self):
        graph = linear_graph([5])
        jobs = [JobSpec(), JobSpec(after_jobs=(0,)), JobSpec(after_jobs=(1,))]
        result = simulate(graph, jobs, transfer_cycles=0)
        assert result.job_start[1] >= result.job_finish[0]
        assert result.job_start[2] >= result.job_finish[1]

    def test_independent_jobs_fill_dependency_gaps(self):
        """Fig 13: independent tasks keep the pipeline busy while chains
        wait for their predecessors."""
        graph = linear_graph([4, 4])
        # One serial chain of 4 + 4 independent tasks.
        chain = [JobSpec()] + [JobSpec(after_jobs=(i,)) for i in range(3)]
        independents = [JobSpec() for _ in range(4)]
        both = simulate(graph, chain + independents)
        only_chain = simulate(graph, chain)
        only_indep = simulate(graph, independents)
        # Cheaper than running the two workloads back-to-back: the
        # independents hide in the chain's dependency bubbles.
        assert both.makespan < only_chain.makespan + only_indep.makespan
        # And the pipeline is busier than with the chain alone.
        assert (both.stage_busy["s0"] / both.makespan
                > only_chain.stage_busy["s0"] / only_chain.makespan)

    def test_bad_dependency_rejected(self):
        graph = linear_graph([1])
        with pytest.raises(SimulationError):
            simulate(graph, [JobSpec(after_jobs=(7,))])

    def test_cyclic_dependency_detected(self):
        graph = linear_graph([1])
        jobs = [JobSpec(after_jobs=(1,)), JobSpec(after_jobs=(0,))]
        with pytest.raises(SimulationError):
            simulate(graph, jobs)


class TestQueueTracking:
    def test_max_queue_recorded(self):
        graph = linear_graph([1, 50])
        sim = simulate(graph, [JobSpec() for _ in range(20)])
        assert sim.max_queue["s1"] > 5

    def test_overflow_flagged(self):
        graph = linear_graph([1, 50])
        sim = simulate(graph, [JobSpec() for _ in range(20)], fifo_capacity=4)
        assert "s1" in sim.overflowed_fifos

    def test_no_overflow_with_big_capacity(self):
        graph = linear_graph([1, 50])
        sim = simulate(graph, [JobSpec() for _ in range(20)], fifo_capacity=64)
        assert sim.overflowed_fifos == []


class TestEmptyAndEdgeCases:
    def test_no_jobs(self):
        graph = linear_graph([1])
        result = simulate(graph, [])
        assert result.makespan == 0.0

    def test_single_stage_many_jobs(self):
        graph = linear_graph([7])
        n = 10
        sim = simulate(graph, [JobSpec() for _ in range(n)],
                       transfer_cycles=0)
        assert sim.makespan == n * 7
