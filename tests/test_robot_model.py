"""Unit tests for the RobotModel tree and builder."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.joints import FloatingJoint, RevoluteJoint
from repro.model.library import hyq, iiwa, quadruped_arm
from repro.model.link import Link
from repro.model.robot import RobotBuilder, RobotModel
from repro.spatial.inertia import SpatialInertia
from repro.spatial.random import random_inertia


def _simple_inertia():
    return SpatialInertia(1.0, np.array([0.0, 0.0, 0.1]), 0.05 * np.eye(3))


class TestValidation:
    def test_parent_must_precede_child(self):
        links = [
            Link("a", 1, RevoluteJoint(), _simple_inertia()),
            Link("b", -1, RevoluteJoint(), _simple_inertia()),
        ]
        with pytest.raises(ModelError):
            RobotModel(links)

    def test_duplicate_names_rejected(self):
        links = [
            Link("a", -1, RevoluteJoint(), _simple_inertia()),
            Link("a", 0, RevoluteJoint(), _simple_inertia()),
        ]
        with pytest.raises(ModelError):
            RobotModel(links)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            RobotModel([])

    def test_massless_leaf_chain_rejected(self):
        builder = RobotBuilder()
        builder.add_link("a", None, RevoluteJoint(), SpatialInertia.zero())
        with pytest.raises(ModelError):
            builder.build()

    def test_massless_intermediate_ok(self):
        builder = RobotBuilder()
        builder.add_link("a", None, RevoluteJoint(), SpatialInertia.zero())
        builder.add_link("b", "a", RevoluteJoint(), _simple_inertia())
        model = builder.build()
        assert model.nb == 2


class TestShapes:
    def test_iiwa_shape(self):
        model = iiwa()
        assert model.nb == 7
        assert model.nv == 7
        assert model.is_serial_chain()

    def test_hyq_shape(self):
        model = hyq()
        assert model.nb == 13
        assert model.nv == 18
        assert not model.is_serial_chain()
        assert isinstance(model.joint(0), FloatingJoint)

    def test_quadruped_arm_matches_paper(self):
        # Section V-B: NB = 19 links, N = 24 DOF.
        model = quadruped_arm()
        assert model.nb == 19
        assert model.nv == 24

    def test_dof_slices_partition(self, any_robot):
        seen = np.zeros(any_robot.nv, dtype=int)
        for i in range(any_robot.nb):
            sl = any_robot.dof_slice(i)
            seen[sl] += 1
        assert np.all(seen == 1)


class TestTopologyQueries:
    def test_subtree_contains_self(self, any_robot):
        for i in range(any_robot.nb):
            assert i in any_robot.subtree(i)

    def test_subtree_strict_excludes_self(self, any_robot):
        for i in range(any_robot.nb):
            assert i not in any_robot.subtree_strict(i)

    def test_root_subtree_is_everything(self, any_robot):
        assert any_robot.subtree(0) == list(range(any_robot.nb))

    def test_ancestors_ordered_root_first(self):
        model = hyq()
        leaf = model.nb - 1
        anc = model.ancestors(leaf)
        assert anc[0] == 0
        assert all(model.depth(a) < model.depth(leaf) for a in anc)

    def test_supporting_dofs_monotone_down_chain(self):
        model = iiwa()
        counts = [len(model.supporting_dofs(i)) for i in range(model.nb)]
        assert counts == sorted(counts)
        assert counts[-1] == model.nv

    def test_depth_of_serial_chain(self):
        model = iiwa()
        assert [model.depth(i) for i in range(7)] == list(range(1, 8))

    def test_leaves_of_hyq(self):
        model = hyq()
        assert len(model.leaves()) == 4

    def test_children_inverse_of_parent(self, any_robot):
        for i in range(any_robot.nb):
            for c in any_robot.children(i):
                assert any_robot.parent(c) == i

    def test_link_index_roundtrip(self, any_robot):
        for i, link in enumerate(any_robot.links):
            assert any_robot.link_index(link.name) == i

    def test_link_index_unknown(self):
        with pytest.raises(ModelError):
            iiwa().link_index("nope")


class TestConfiguration:
    def test_neutral_q_shape(self, any_robot):
        assert any_robot.neutral_q().shape == (any_robot.nv,)

    def test_integrate_neutral_additive_for_revolute(self, rng):
        model = iiwa()
        q = model.random_q(rng)
        dq = rng.normal(size=model.nv)
        assert np.allclose(model.integrate(q, dq), q + dq)

    def test_random_state_shapes(self, any_robot, rng):
        q, qd = any_robot.random_state(rng)
        assert q.shape == (any_robot.nv,)
        assert qd.shape == (any_robot.nv,)


class TestBuilder:
    def test_unknown_parent_rejected(self):
        builder = RobotBuilder()
        with pytest.raises(ModelError):
            builder.add_link("a", "ghost", RevoluteJoint(), _simple_inertia())

    def test_duplicate_rejected(self):
        builder = RobotBuilder()
        builder.add_link("a", None, RevoluteJoint(), _simple_inertia())
        with pytest.raises(ModelError):
            builder.add_link("a", None, RevoluteJoint(), _simple_inertia())

    def test_x_tree_exclusive_with_translation(self):
        builder = RobotBuilder()
        with pytest.raises(ModelError):
            builder.add_link(
                "a", None, RevoluteJoint(), _simple_inertia(),
                x_tree=np.eye(6), translation=np.ones(3),
            )

    def test_bad_rotation_rejected(self):
        builder = RobotBuilder()
        with pytest.raises(ModelError):
            builder.add_link(
                "a", None, RevoluteJoint(), _simple_inertia(),
                rotation=2 * np.eye(3),
            )

    def test_build_chain(self, rng):
        builder = RobotBuilder("two")
        builder.add_link("a", None, RevoluteJoint(), random_inertia(rng))
        builder.add_link(
            "b", "a", RevoluteJoint(), random_inertia(rng),
            translation=np.array([0.0, 0.0, 0.4]),
        )
        model = builder.build()
        assert model.nb == 2
        assert model.parent(1) == 0
