"""Tests for batch dynamics, contact dynamics, and operational-space
control — the downstream-user features built on the substrate."""

import numpy as np
import pytest

from repro.apps.integrators import State, rk4_step
from repro.apps.osc import TaskSpaceController
from repro.dynamics.batch import (
    BatchDerivatives,
    BatchStates,
    batch_fd,
    batch_fd_derivatives,
    batch_id,
    batch_minv,
)
from repro.dynamics.contact import (
    ContactPoint,
    constrained_forward_dynamics,
    contact_impulse,
    contact_jacobian,
)
from repro.dynamics.derivatives import fd_derivatives
from repro.dynamics.functions import forward_dynamics
from repro.dynamics.kinematics import forward_kinematics, velocity_of_point
from repro.dynamics.rnea import rnea
from repro.model.library import double_pendulum, hyq, iiwa


class TestBatchDynamics:
    def test_batch_id_matches_scalar(self, rng):
        model = iiwa()
        states = BatchStates.random(model, 5, seed=2)
        qdd = rng.normal(size=(5, model.nv))
        batched = batch_id(model, states, qdd)
        for k in range(5):
            assert np.allclose(
                batched[k], rnea(model, states.q[k], states.qd[k], qdd[k])
            )

    def test_batch_fd_matches_scalar(self, rng):
        model = hyq()
        states = BatchStates.random(model, 4, seed=3)
        tau = rng.normal(size=(4, model.nv))
        batched = batch_fd(model, states, tau)
        for k in range(4):
            assert np.allclose(
                batched[k],
                forward_dynamics(model, states.q[k], states.qd[k], tau[k]),
                atol=1e-9,
            )

    def test_batch_derivatives_match_scalar(self, rng):
        model = iiwa()
        states = BatchStates.random(model, 3, seed=4)
        tau = rng.normal(size=(3, model.nv))
        batched = batch_fd_derivatives(model, states, tau)
        assert isinstance(batched, BatchDerivatives)
        for k in range(3):
            scalar = fd_derivatives(model, states.q[k], states.qd[k], tau[k])
            assert np.allclose(batched.qdd[k], scalar.qdd, atol=1e-9)
            assert np.allclose(batched.dqdd_dq[k], scalar.dqdd_dq, atol=1e-8)
            assert np.allclose(batched.dqdd_dtau[k], scalar.minv, atol=1e-9)

    def test_batch_minv_shapes(self):
        model = iiwa()
        states = BatchStates.random(model, 6)
        minv = batch_minv(model, states)
        assert minv.shape == (6, model.nv, model.nv)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BatchStates(np.zeros((2, 7)), np.zeros((3, 7)))


class TestContactDynamics:
    def test_contact_jacobian_matches_point_velocity(self, rng):
        model = hyq()
        q, qd = model.random_state(rng)
        contact = ContactPoint(model.link_index("lf_kfe"),
                               np.array([0.0, 0.0, -0.3]))
        jac = contact_jacobian(model, q, [contact])
        v_point = velocity_of_point(
            model, q, qd, contact.link, contact.point_local
        )
        assert np.allclose(jac @ qd, v_point, atol=1e-9)

    def test_constrained_fd_zeroes_contact_acceleration(self, rng):
        """The constrained foot's world acceleration vanishes (checked by
        finite differences of its velocity along the motion)."""
        model = hyq()
        q, qd = model.random_state(rng)
        qd = 0.2 * qd
        feet = [
            ContactPoint(model.link_index(name), np.array([0.0, 0.0, -0.35]))
            for name in ("lf_kfe", "rh_kfe")
        ]
        tau = rng.normal(size=model.nv)
        result = constrained_forward_dynamics(model, q, qd, tau, feet)
        eps = 1e-6
        jac = contact_jacobian(model, q, feet)
        v_now = jac @ qd
        q_next = model.integrate(q, eps * qd)
        v_next = contact_jacobian(model, q_next, feet) @ (
            qd + eps * result.qdd
        )
        accel = (v_next - v_now) / eps
        assert np.allclose(accel, 0.0, atol=1e-3)

    def test_constrained_fd_reduces_to_free_without_contacts_forces(self, rng):
        model = iiwa()
        q, qd = model.random_state(rng)
        tau = rng.normal(size=model.nv)
        tip = ContactPoint(6, np.zeros(3))
        result = constrained_forward_dynamics(model, q, qd, tau, [tip])
        free = forward_dynamics(model, q, qd, tau)
        # Constrained solution differs from free fall unless forces ~ 0.
        assert result.contact_forces.shape == (3,)
        assert not np.allclose(result.qdd, free, atol=1e-6)

    def test_impulse_kills_contact_velocity(self, rng):
        model = hyq()
        q, qd = model.random_state(rng)
        foot = ContactPoint(model.link_index("rf_kfe"),
                            np.array([0.0, 0.0, -0.35]))
        qd_plus = contact_impulse(model, q, qd, [foot])
        jac = contact_jacobian(model, q, [foot])
        assert np.allclose(jac @ qd_plus, 0.0, atol=1e-8)

    def test_impulse_dissipates_energy(self, rng):
        from repro.dynamics.crba import crba

        model = hyq()
        q, qd = model.random_state(rng)
        foot = ContactPoint(model.link_index("lh_kfe"),
                            np.array([0.0, 0.0, -0.35]))
        qd_plus = contact_impulse(model, q, qd, [foot])
        m = crba(model, q)
        ke_minus = 0.5 * qd @ m @ qd
        ke_plus = 0.5 * qd_plus @ m @ qd_plus
        assert ke_plus <= ke_minus + 1e-9

    def test_elastic_impulse_reverses_contact_velocity(self, rng):
        model = hyq()
        q, qd = model.random_state(rng)
        foot = ContactPoint(model.link_index("lf_kfe"),
                            np.array([0.0, 0.0, -0.35]))
        jac = contact_jacobian(model, q, [foot])
        qd_plus = contact_impulse(model, q, qd, [foot], restitution=1.0)
        assert np.allclose(jac @ qd_plus, -(jac @ qd), atol=1e-7)


class TestOperationalSpaceControl:
    @pytest.mark.parametrize("inertia_weighting", [False, True],
                             ids=["pd-gravity", "osc-lambda"])
    def test_reaches_target(self, rng, inertia_weighting):
        model = iiwa()
        controller = TaskSpaceController(
            model, link=6, point_local=np.array([0.0, 0.0, 0.08]),
            kp=150.0, kd=8.0, inertia_weighting=inertia_weighting,
        )
        q_goal = 0.4 * model.random_q(rng)
        fk = forward_kinematics(model, q_goal)
        target = fk.link_position(6) + fk.link_rotation(6) @ controller.point_local

        # Start bent: the vertical neutral pose is kinematically singular.
        state = State(0.3 * np.ones(model.nv), np.zeros(model.nv))
        for _ in range(700):
            tau = controller.torques(state.q, state.qd, target)
            state = rk4_step(model, state, tau, 0.003)
        assert controller.tracking_error(state.q, target) < 5e-3

    def test_holds_position_at_target(self, rng):
        model = double_pendulum()
        controller = TaskSpaceController(
            model, link=1, point_local=np.array([0.0, 0.0, 0.8]),
            kp=150.0, kd=8.0,
        )
        q = np.array([0.3, -0.4])
        fk = forward_kinematics(model, q)
        target = fk.link_position(1) + fk.link_rotation(1) @ controller.point_local
        state = State(q.copy(), np.zeros(2))
        for _ in range(400):
            tau = controller.torques(state.q, state.qd, target)
            state = rk4_step(model, state, tau, 0.005)
        assert controller.tracking_error(state.q, target) < 5e-3

    def test_damping_is_mass_weighted(self, rng):
        """The damping torque on a light wrist joint stays proportional to
        its inertia (the stiffness trap the docstring warns about)."""
        model = iiwa()
        controller = TaskSpaceController(model, link=6)
        q = 0.3 * np.ones(model.nv)
        qd = np.zeros(model.nv)
        qd[6] = 1.0        # spin only the light wrist
        fk = forward_kinematics(model, q)
        target = fk.link_position(6)
        tau_moving = controller.torques(q, qd, target)
        tau_still = controller.torques(q, np.zeros(model.nv), target)
        wrist_damping = abs(tau_moving[6] - tau_still[6])
        assert wrist_damping < 0.5    # ~ kd * M_77, tiny inertia
