"""Tests for branch decomposition, symmetry detection, re-rooting and
floating-base splitting — the SAP substrate (paper Section V-C)."""

import numpy as np
import pytest

from repro.dynamics.kinematics import forward_kinematics, kinetic_energy
from repro.errors import ModelError
from repro.model.library import atlas, hyq, iiwa, quadruped_arm, spot_arm, tiago
from repro.model.topology import (
    decompose,
    level_schedule,
    map_state_to_rerooted,
    map_state_to_split,
    reroot,
    split_floating_base,
    symmetric_branch_groups,
)


class TestDecompose:
    def test_serial_chain_single_branch(self):
        decomposition = decompose(iiwa())
        assert len(decomposition.branches) == 1
        assert decomposition.root_branch.links == list(range(7))

    def test_tiago_linear(self):
        # Fig 11a: Tiago's topology is linear -> one root + zero or one
        # branch boundary (depends only on unary chain rule).
        decomposition = decompose(tiago())
        assert len(decomposition.branches) == 1

    def test_hyq_branches(self):
        # Root = trunk, then 4 leg branches.
        decomposition = decompose(hyq())
        assert len(decomposition.branches) == 5
        assert decomposition.root_branch.links == [0]
        sizes = sorted(b.size for b in decomposition.branches[1:])
        assert sizes == [3, 3, 3, 3]

    def test_quadruped_arm_branches(self):
        # Fig 3 robot: body + 4 legs + 1 arm.
        decomposition = decompose(quadruped_arm())
        assert len(decomposition.branches) == 6
        sizes = sorted(b.size for b in decomposition.branches[1:])
        assert sizes == [3, 3, 3, 3, 6]

    def test_links_partition(self):
        model = atlas()
        decomposition = decompose(model)
        seen = sorted(l for b in decomposition.branches for l in b.links)
        assert seen == list(range(model.nb))

    def test_parent_branch_links_are_shallower(self):
        model = atlas()
        decomposition = decompose(model)
        for branch in decomposition.branches:
            if branch.parent_branch is None:
                continue
            parent = decomposition.branches[branch.parent_branch]
            assert model.depth(parent.links[-1]) < model.depth(branch.links[0])


class TestLevelSchedule:
    """The wavefront schedule the compiled execution plans are built on."""

    ROBOTS = [iiwa, tiago, hyq, quadruped_arm, spot_arm, atlas]

    @pytest.mark.parametrize("factory", ROBOTS, ids=lambda f: f.__name__)
    def test_covers_every_link_exactly_once(self, factory):
        model = factory()
        levels = level_schedule(model)
        links = [link for level in levels for link in level.links]
        assert sorted(links) == list(range(model.nb))

    @pytest.mark.parametrize("factory", ROBOTS, ids=lambda f: f.__name__)
    def test_parent_before_child(self, factory):
        """A link's parent sits in the level exactly one depth shallower,
        so processing levels in order satisfies every recursion
        dependency (and reverse order every backward dependency)."""
        model = factory()
        levels = level_schedule(model)
        level_of = {
            link: index
            for index, level in enumerate(levels)
            for link in level.links
        }
        for i in range(model.nb):
            parent = model.parent(i)
            if parent >= 0:
                assert level_of[parent] == level_of[i] - 1
            else:
                assert level_of[i] == 0
        assert [level.depth for level in levels] == sorted(
            {model.depth(i) for i in range(model.nb)}
        )

    def test_links_within_level_are_independent(self):
        """No link of a level is an ancestor of another (they can fuse)."""
        model = atlas()
        for level in level_schedule(model):
            for a in level.links:
                for b in level.links:
                    if a != b:
                        assert a not in model.ancestors(b)

    def test_level_widths_match_branching(self):
        # hyq: trunk, then 4 legs advancing in lock-step for 3 levels.
        widths = [level.size for level in level_schedule(hyq())]
        assert widths == [1, 4, 4, 4]
        # iiwa is serial: every level is one link wide.
        assert [level.size for level in level_schedule(iiwa())] == [1] * 7
        # atlas fuses both arms and both legs at its widest wavefront.
        assert max(level.size for level in level_schedule(atlas())) == 5


class TestSymmetry:
    def test_hyq_legs_form_one_group(self):
        groups = symmetric_branch_groups(hyq())
        assert len(groups) == 1
        assert len(groups[0]) == 4

    def test_quadruped_arm_groups(self):
        # 4 symmetric legs + 1 arm (singleton).
        groups = symmetric_branch_groups(quadruped_arm())
        sizes = sorted(len(g) for g in groups)
        assert sizes == [1, 4]

    def test_spot_arm_matches_paper_grouping_potential(self):
        groups = symmetric_branch_groups(spot_arm())
        assert max(len(g) for g in groups) == 4

    def test_atlas_arms_and_legs_symmetric(self):
        groups = symmetric_branch_groups(atlas())
        # Two arms match, two legs match, head is a singleton.
        pair_groups = [g for g in groups if len(g) == 2]
        assert len(pair_groups) == 2


class TestReroot:
    def test_requires_floating_base(self):
        with pytest.raises(ModelError):
            reroot(iiwa(), "link3")

    def test_same_root_is_identity(self):
        model = hyq()
        assert reroot(model, 0) is model

    def test_atlas_depth_reduction(self):
        # The paper's Fig 11c: depth 11 with pelvis root, 9 after re-rooting
        # at torso2.
        model = atlas()
        assert model.max_depth() == 11
        rerooted = reroot(model, "torso2")
        assert rerooted.max_depth() == 9

    def test_preserves_link_count_and_dofs(self):
        model = atlas()
        rerooted = reroot(model, "torso2")
        assert rerooted.nb == model.nb
        assert rerooted.nv == model.nv

    def test_preserves_connectivity(self):
        model = atlas()
        rerooted = reroot(model, "torso2")
        edges = set()
        for i in range(model.nb):
            if model.parent(i) >= 0:
                a = model.links[i].name
                b = model.links[model.parent(i)].name
                edges.add(frozenset((a, b)))
        edges_new = set()
        for i in range(rerooted.nb):
            if rerooted.parent(i) >= 0:
                a = rerooted.links[i].name
                b = rerooted.links[rerooted.parent(i)].name
                edges_new.add(frozenset((a, b)))
        # The old world attachment disappears, the new one appears; interior
        # edges are identical.
        assert edges == edges_new

    @pytest.mark.parametrize("builder,new_root", [
        (hyq, "lf_haa"),
        (atlas, "torso2"),
        (quadruped_arm, "arm2"),
    ])
    def test_kinetic_energy_invariant(self, builder, new_root, rng):
        """Re-rooting changes coordinates, not physics: KE must match."""
        model = builder()
        rerooted = reroot(model, new_root)
        q, qd = model.random_state(rng)
        q_new, qd_new = map_state_to_rerooted(model, rerooted, q, qd)
        ke_original = kinetic_energy(model, q, qd)
        ke_rerooted = kinetic_energy(rerooted, q_new, qd_new)
        assert np.isclose(ke_original, ke_rerooted, rtol=1e-8)

    def test_link_world_poses_invariant(self, rng):
        model = atlas()
        rerooted = reroot(model, "torso2")
        q, qd = model.random_state(rng)
        q_new, _ = map_state_to_rerooted(model, rerooted, q, qd)
        fk_old = forward_kinematics(model, q)
        fk_new = forward_kinematics(rerooted, q_new)
        for name in ("l_arm7", "r_leg6", "head", "pelvis"):
            i_old = model.link_index(name)
            i_new = rerooted.link_index(name)
            assert np.allclose(
                fk_old.link_position(i_old), fk_new.link_position(i_new),
                atol=1e-8,
            ), name


class TestSplitFloatingBase:
    def test_structure(self):
        model = hyq()
        split = split_floating_base(model)
        assert split.nb == model.nb + 1
        assert split.nv == model.nv
        assert split.links[0].joint.type_name == "Translation3Joint"
        assert split.links[1].joint.type_name == "SphericalJoint"

    def test_requires_floating(self):
        with pytest.raises(ModelError):
            split_floating_base(iiwa())

    def test_kinetic_energy_invariant(self, rng):
        model = hyq()
        split = split_floating_base(model)
        q, qd = model.random_state(rng)
        q_new, qd_new = map_state_to_split(model, split, q, qd)
        assert np.isclose(
            kinetic_energy(model, q, qd), kinetic_energy(split, q_new, qd_new),
            rtol=1e-8,
        )

    def test_leaf_world_pose_invariant(self, rng):
        model = quadruped_arm()
        split = split_floating_base(model)
        q, qd = model.random_state(rng)
        q_new, _ = map_state_to_split(model, split, q, qd)
        fk_old = forward_kinematics(model, q)
        fk_new = forward_kinematics(split, q_new)
        i_old = model.link_index("arm6")
        i_new = split.link_index("arm6")
        assert np.allclose(
            fk_old.link_position(i_old), fk_new.link_position(i_new), atol=1e-8
        )
