"""Batched contact kernels vs the per-task ``repro.dynamics.contact``
reference: 1e-10 equivalence across every library robot, plus the masked
contact-mode solves and the dispatch registration."""

import numpy as np
import pytest

from repro.dynamics.batch import BatchStates, batch_evaluate, batch_fd
from repro.dynamics.contact import (
    ContactPoint,
    ConstrainedDynamicsResult,
    _jacobian_dot_qd,
    constrained_forward_dynamics,
    contact_impulse,
    contact_jacobian,
    jacobian_dot_qd,
)
from repro.dynamics.contact_batch import (
    batch_constrained_fd,
    batch_contact_impulse,
    batch_contact_jacobian,
    batch_contact_positions,
    batch_jacobian_dot_qd,
    contact_signature,
)
from repro.dynamics.kinematics import forward_kinematics
from repro.model.library import ROBOT_REGISTRY, load_robot

#: Contact-force solves are compared at 1e-10 *scaled by the reference
#: magnitude*: on robots with fewer than 3 DOF a 3-axis point constraint
#: is infeasible, the damped KKT forces are huge, and only the relative
#: agreement of the two solvers is meaningful.
TOL = 1e-10


def _contacts(model):
    """Two leaf contacts (one on single-leaf robots)."""
    return [
        ContactPoint(leaf, np.array([0.02, -0.01, -0.25]))
        for leaf in model.leaves()[:2]
    ]


def _states(model, n, seed=0, qd_scale=1.0):
    rng = np.random.default_rng(seed)
    qs = np.stack([model.random_q(rng) for _ in range(n)])
    qds = qd_scale * rng.normal(size=(n, model.nv))
    taus = rng.normal(size=(n, model.nv))
    return qs, qds, taus


def _assert_close(actual, reference, label, scale=1.0):
    scale = max(1.0, scale, float(np.max(np.abs(reference))))
    err = float(np.max(np.abs(actual - reference)))
    assert err <= TOL * scale, f"{label}: {err:.3e} > {TOL:.0e} * {scale:.1e}"


def _check_rows(model, contacts, qs, qds, taus, cfd, qd_plus, f_ext, rows,
                restitution):
    # On robots with fewer DOFs than constraint rows the point constraint
    # is infeasible: the damped KKT forces are O(1/damping) and every
    # derived quantity is a cancellation at that scale, so the comparison
    # scale is the force magnitude (conditioning-aware), not 1.
    degenerate = 3 * len(contacts) > model.nv
    for k in rows:
        fe = None if f_ext is None else {
            link: stack[k] for link, stack in f_ext.items()
        }
        ref = constrained_forward_dynamics(
            model, qs[k], qds[k], taus[k], contacts, fe
        )
        scale = (
            float(np.max(np.abs(ref.contact_forces))) if degenerate else 1.0
        )
        _assert_close(cfd.qdd[k], ref.qdd, f"qdd[{k}]", scale)
        _assert_close(cfd.contact_forces[k], ref.contact_forces,
                      f"forces[{k}]", scale)
        ref_imp = contact_impulse(model, qs[k], qds[k], contacts,
                                  restitution=restitution)
        _assert_close(qd_plus[k], ref_imp, f"impulse[{k}]", scale)


class TestEquivalence:
    """Batched == per-task contact.py at (scaled) 1e-10."""

    @pytest.mark.parametrize("robot", sorted(ROBOT_REGISTRY))
    @pytest.mark.parametrize("restitution", [0.0, 0.5])
    def test_batch_one(self, robot, restitution):
        model = load_robot(robot)
        contacts = _contacts(model)
        qs, qds, taus = _states(model, 1, seed=11)
        f_ext = {contacts[0].link: np.tile(
            np.array([0.1, -0.2, 0.05, 1.0, 0.5, -0.3]), (1, 1)
        )}
        cfd = batch_constrained_fd(model, qs, qds, taus, contacts,
                                   f_ext=f_ext)
        qd_plus = batch_contact_impulse(model, qs, qds, contacts,
                                        restitution=restitution)
        _check_rows(model, contacts, qs, qds, taus, cfd, qd_plus, f_ext,
                    [0], restitution)

    @pytest.mark.parametrize("robot", sorted(ROBOT_REGISTRY))
    def test_batch_256_sampled_rows(self, robot):
        """Full 256-task batch; the scalar reference checks a row sample
        (the batch path has no row-count-dependent branches beyond the
        stacking already exercised here)."""
        model = load_robot(robot)
        contacts = _contacts(model)
        qs, qds, taus = _states(model, 256, seed=5)
        rng = np.random.default_rng(17)
        f_ext = {contacts[-1].link: rng.normal(size=(256, 6))}
        cfd = batch_constrained_fd(model, qs, qds, taus, contacts,
                                   f_ext=f_ext)
        qd_plus = batch_contact_impulse(model, qs, qds, contacts,
                                        restitution=0.3)
        assert cfd.qdd.shape == (256, model.nv)
        assert cfd.contact_forces.shape == (256, 3 * len(contacts))
        _check_rows(model, contacts, qs, qds, taus, cfd, qd_plus, f_ext,
                    [0, 97, 255], 0.3)

    @pytest.mark.parametrize("engine", ["loop", "vectorized", "compiled"])
    def test_engines_agree(self, engine):
        model = load_robot("hyq")
        contacts = _contacts(model)
        qs, qds, taus = _states(model, 8, seed=2)
        ref = batch_constrained_fd(model, qs, qds, taus, contacts,
                                   engine="loop")
        out = batch_constrained_fd(model, qs, qds, taus, contacts,
                                   engine=engine)
        assert np.allclose(out.qdd, ref.qdd, atol=1e-9)
        assert np.allclose(out.contact_forces, ref.contact_forces,
                           atol=1e-8)


class TestContactKinematics:
    @pytest.mark.parametrize("robot", sorted(ROBOT_REGISTRY))
    def test_jacobian_matches_scalar(self, robot):
        model = load_robot(robot)
        contacts = _contacts(model)
        qs, _, _ = _states(model, 6, seed=3)
        jac = batch_contact_jacobian(model, qs, contacts)
        for k in range(6):
            assert np.allclose(
                jac[k], contact_jacobian(model, qs[k], contacts), atol=1e-12
            )

    def test_jacobian_dot_qd_matches_scalar_analytic(self):
        model = load_robot("atlas")
        contacts = _contacts(model)
        qs, qds, _ = _states(model, 6, seed=4, qd_scale=2.0)
        jd = batch_jacobian_dot_qd(model, qs, qds, contacts)
        for k in range(6):
            assert np.allclose(
                jd[k], jacobian_dot_qd(model, qs[k], qds[k], contacts),
                atol=1e-10,
            )

    def test_analytic_jdot_matches_finite_difference(self):
        """The analytic drift term agrees with the directional difference
        up to the difference's own truncation error."""
        model = load_robot("hyq")
        contacts = _contacts(model)
        rng = np.random.default_rng(8)
        for _ in range(4):
            q, qd = model.random_state(rng)
            analytic = jacobian_dot_qd(model, q, qd, contacts)
            fd = _jacobian_dot_qd(model, q, qd, contacts)
            assert np.allclose(analytic, fd, atol=1e-5)

    def test_finite_difference_eps_scales_with_state(self):
        """The directional difference stays accurate at high joint rates
        (the old absolute eps degraded with |qd|)."""
        model = load_robot("iiwa")
        contacts = _contacts(model)
        rng = np.random.default_rng(9)
        q = model.random_q(rng)
        qd = 50.0 * rng.normal(size=model.nv)     # very fast state
        analytic = jacobian_dot_qd(model, q, qd, contacts)
        fd = _jacobian_dot_qd(model, q, qd, contacts)
        assert np.allclose(fd, analytic, rtol=1e-4, atol=1e-3)

    def test_contact_positions(self):
        model = load_robot("hyq")
        contacts = _contacts(model)
        qs, _, _ = _states(model, 3, seed=6)
        pos = batch_contact_positions(model, qs, contacts)
        assert pos.shape == (3, len(contacts), 3)
        fk = forward_kinematics(model, qs[0])
        c = contacts[0]
        expected = fk.link_position(c.link) + fk.link_rotation(c.link) @ c.point_local
        assert np.allclose(pos[0, 0], expected, atol=1e-12)


class TestContactModes:
    def test_all_inactive_reduces_to_free_dynamics(self):
        model = load_robot("hyq")
        contacts = _contacts(model)
        qs, qds, taus = _states(model, 5, seed=7)
        res = batch_constrained_fd(
            model, qs, qds, taus, contacts,
            active=np.zeros((5, len(contacts)), dtype=bool),
        )
        free = batch_fd(model, BatchStates(qs, qds), taus)
        assert np.allclose(res.qdd, free, atol=1e-12)
        assert np.all(res.contact_forces == 0.0)

    def test_mixed_modes_match_per_task_active_sets(self):
        """Tasks in different contact modes share one batched solve and
        still match the per-task solve over exactly their active set."""
        model = load_robot("hyq")
        contacts = _contacts(model)
        n = 4
        qs, qds, taus = _states(model, n, seed=8)
        active = np.array(
            [[True, True], [True, False], [False, True], [False, False]]
        )
        res = batch_constrained_fd(model, qs, qds, taus, contacts,
                                   active=active)
        for k in range(n):
            sub = [c for c, on in zip(contacts, active[k]) if on]
            if sub:
                ref = constrained_forward_dynamics(
                    model, qs[k], qds[k], taus[k], sub
                )
                _assert_close(res.qdd[k], ref.qdd, f"qdd[{k}]")
                picked = res.contact_forces[k].reshape(-1, 3)[active[k]]
                _assert_close(picked.ravel(), ref.contact_forces,
                              f"forces[{k}]")
            inactive = ~np.repeat(active[k], 3)
            assert np.all(res.contact_forces[k][inactive] == 0.0)

    def test_masked_impulse(self):
        model = load_robot("hyq")
        contacts = _contacts(model)
        qs, qds, _ = _states(model, 3, seed=9)
        active = np.array([[True, False]] * 3)
        qd_plus = batch_contact_impulse(model, qs, qds, contacts,
                                        active=active)
        for k in range(3):
            ref = contact_impulse(model, qs[k], qds[k], [contacts[0]])
            _assert_close(qd_plus[k], ref, f"impulse[{k}]")


class TestDispatch:
    def test_cfd_registered_next_to_table_one(self):
        from repro.dynamics.batch import batch_function_names

        assert "cFD" in batch_function_names()
        assert "impulse" in batch_function_names()

    def test_cfd_dispatch(self):
        model = load_robot("hyq")
        contacts = _contacts(model)
        qs, qds, taus = _states(model, 3, seed=10)
        values = batch_evaluate(
            model, "cFD", BatchStates(qs, qds), taus, contacts=contacts
        )
        assert len(values) == 3
        assert isinstance(values[0], ConstrainedDynamicsResult)
        ref = batch_constrained_fd(model, qs, qds, taus, contacts)
        for k, value in enumerate(values):
            assert np.allclose(value.qdd, ref.qdd[k], atol=1e-12)

    def test_impulse_dispatch(self):
        model = load_robot("hyq")
        contacts = _contacts(model)
        qs, qds, _ = _states(model, 2, seed=12)
        values = batch_evaluate(
            model, "impulse", BatchStates(qs, qds), contacts=contacts,
            restitution=0.2,
        )
        ref = batch_contact_impulse(model, qs, qds, contacts,
                                    restitution=0.2)
        for k, value in enumerate(values):
            assert np.allclose(value, ref[k], atol=1e-12)

    def test_unknown_extension_function(self):
        model = load_robot("iiwa")
        qs, qds, _ = _states(model, 1)
        with pytest.raises(KeyError, match="unknown batch function"):
            batch_evaluate(model, "nope", BatchStates(qs, qds))

    def test_missing_contacts_rejected(self):
        model = load_robot("iiwa")
        qs, qds, taus = _states(model, 1)
        with pytest.raises(ValueError, match="contacts"):
            batch_evaluate(model, "cFD", BatchStates(qs, qds), taus)

    def test_contact_signature_hashable(self):
        model = load_robot("hyq")
        contacts = _contacts(model)
        sig = contact_signature(contacts)
        assert sig == contact_signature(list(contacts))
        hash(sig)
