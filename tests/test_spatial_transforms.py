"""Unit tests for Plücker spatial transforms."""

import numpy as np

from repro.spatial.random import random_rotation
from repro.spatial.so3 import rotz
from repro.spatial.transforms import (
    force_transform,
    inverse_transform,
    is_spatial_transform,
    rot,
    spatial_transform,
    transform_rotation,
    transform_translation,
    xlt,
)


class TestConstruction:
    def test_rot_structure(self, rng):
        e = random_rotation(rng)
        x = rot(e)
        assert np.allclose(x[:3, :3], e)
        assert np.allclose(x[3:, 3:], e)
        assert np.allclose(x[:3, 3:], 0)
        assert np.allclose(x[3:, :3], 0)

    def test_xlt_identity_rotation(self, rng):
        r = rng.normal(size=3)
        x = xlt(r)
        assert np.allclose(x[:3, :3], np.eye(3))
        assert np.allclose(x[:3, 3:], 0)

    def test_spatial_transform_equals_product(self, rng):
        e = random_rotation(rng)
        r = rng.normal(size=3)
        assert np.allclose(spatial_transform(e, r), rot(e) @ xlt(r))

    def test_top_right_block_always_zero(self, rng):
        # The paper highlights this sparsity (Section II).
        e = random_rotation(rng)
        r = rng.normal(size=3)
        assert np.allclose(spatial_transform(e, r)[:3, 3:], 0)


class TestInverseAndForce:
    def test_inverse_transform(self, rng):
        x = spatial_transform(random_rotation(rng), rng.normal(size=3))
        assert np.allclose(inverse_transform(x) @ x, np.eye(6), atol=1e-12)

    def test_force_transform_is_inverse_transpose(self, rng):
        x = spatial_transform(random_rotation(rng), rng.normal(size=3))
        assert np.allclose(force_transform(x), inverse_transform(x).T)

    def test_power_balance(self, rng):
        # Power v.f is invariant: (X v) . (X^{-T} f) == v . f
        x = spatial_transform(random_rotation(rng), rng.normal(size=3))
        v = rng.normal(size=6)
        f = rng.normal(size=6)
        assert np.isclose((x @ v) @ (force_transform(x) @ f), v @ f)

    def test_transpose_maps_forces_to_parent(self, rng):
        # X.T == force transform in the opposite direction (Alg 1, line 8).
        x = spatial_transform(random_rotation(rng), rng.normal(size=3))
        assert np.allclose(x.T, force_transform(inverse_transform(x)))


class TestExtraction:
    def test_rotation_roundtrip(self, rng):
        e = random_rotation(rng)
        r = rng.normal(size=3)
        x = spatial_transform(e, r)
        assert np.allclose(transform_rotation(x), e)

    def test_translation_roundtrip(self, rng):
        e = random_rotation(rng)
        r = rng.normal(size=3)
        x = spatial_transform(e, r)
        assert np.allclose(transform_translation(x), r)


class TestValidation:
    def test_valid(self, rng):
        assert is_spatial_transform(
            spatial_transform(random_rotation(rng), rng.normal(size=3))
        )

    def test_rejects_dense(self, rng):
        assert not is_spatial_transform(rng.normal(size=(6, 6)))

    def test_rejects_nonzero_top_right(self):
        x = np.eye(6)
        x[0, 3] = 1.0
        assert not is_spatial_transform(x)

    def test_composition_valid(self, rng):
        x1 = spatial_transform(random_rotation(rng), rng.normal(size=3))
        x2 = spatial_transform(rotz(0.4), rng.normal(size=3))
        assert is_spatial_transform(x1 @ x2)
