"""Observability overhead guard: disabled hooks must cost < 2%.

The engine kernels (:mod:`repro.dynamics.plan`, the batched contact
solve, the rollout step loop) carry permanent instrumentation points
(:mod:`repro.obs.hooks`).  When no profiler/tracer is installed each
point is two function calls and one module-global check; this bench
proves that residue is invisible on the workloads ``bench_plan`` and
``bench_rollout`` time:

* measure the per-call cost of one disabled ``kernel_begin`` /
  ``kernel_end`` pair directly (tight loop, best-of);
* count how many hook pairs one batched evaluation / one rollout slab
  actually executes (a profiled dry run counts them exactly);
* assert ``pairs x pair_cost < 2%`` of the measured disabled-state
  kernel time for both workloads.

The enabled-state slowdown is also measured and reported (not gated —
profiling is opt-in, you pay for what you turn on).

Runs under pytest or directly for CI smoke::

    PYTHONPATH=src python benchmarks/bench_obs.py --quick --json
"""

import sys
import time

import numpy as np

from repro import obs
from repro.dynamics import BatchStates, batch_evaluate
from repro.dynamics.functions import RBDFunction
from repro.model.library import load_robot
from repro.rollout import RolloutEngine

#: Disabled instrumentation must stay under this fraction of kernel time.
OVERHEAD_BUDGET = 0.02
PLAN_ROBOT = "hyq"
PLAN_BATCH = 64
ROLLOUT_BATCH = 32
ROLLOUT_HORIZON = 16


def measure_pair_cost_s(iters: int = 100_000) -> float:
    """Per-call cost of one disabled kernel_begin/kernel_end pair."""
    from repro.obs import hooks

    assert not hooks.enabled, "hooks must be uninstalled for this measure"
    begin = hooks.kernel_begin
    end = hooks.kernel_end
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(iters):
            end(begin(), "robot", "kernel", 1)
        best = min(best, time.perf_counter() - t0)
    return best / iters


def _count_hook_pairs(run) -> int:
    """Exact hook-pair count for one call of ``run`` (profiled dry run).

    Per-level points are cheaper than a full pair when disabled (one
    local-bool branch), so counting them as whole pairs makes the bound
    conservative.
    """
    profiler = obs.KernelProfiler(per_level=True)
    with obs.profiled(profiler=profiler):
        run()
    pairs = 0
    for stat in profiler.breakdown().values():
        pairs += stat["calls"]
        pairs += sum(lv["calls"] for lv in stat.get("levels", {}).values())
    return pairs


def _time_best(run, reps: int) -> float:
    run()                                   # warm-up
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - t0)
    return best


def _workloads(quick: bool) -> list[tuple[str, object]]:
    """(name, zero-arg callable) pairs mirroring bench_plan/bench_rollout."""
    plan_model = load_robot(PLAN_ROBOT)
    batch = 16 if quick else PLAN_BATCH
    states = BatchStates.random(plan_model, batch, seed=0)
    u = np.random.default_rng(1).normal(size=(batch, plan_model.nv))

    def run_plan():
        batch_evaluate(plan_model, RBDFunction.FD, states, u,
                       engine="compiled")

    roll_model = load_robot("iiwa")
    n = 8 if quick else ROLLOUT_BATCH
    t_steps = 8 if quick else ROLLOUT_HORIZON
    rng = np.random.default_rng(2)
    q0 = rng.normal(size=(n, roll_model.nv)) * 0.1
    qd0 = np.zeros((n, roll_model.nv))
    controls = rng.normal(size=(n, t_steps, roll_model.nv)) * 0.05
    roll = RolloutEngine("semi_implicit", engine="compiled")

    def run_rollout():
        roll.rollout(roll_model, q0, qd0, controls, dt=1e-3)

    return [("plan/FD", run_plan), ("rollout/semi_implicit", run_rollout)]


def run_obs_bench(quick: bool = False) -> list[dict]:
    """Rows of {workload, pairs, pair_cost_ns, disabled_s, enabled_s,
    bound_overhead, enabled_ratio} for the two guarded workloads."""
    obs.uninstall()                         # guarantee the disabled state
    pair_cost = measure_pair_cost_s(20_000 if quick else 100_000)
    reps = 3 if quick else 10
    rows = []
    for name, run in _workloads(quick):
        pairs = _count_hook_pairs(run)
        disabled_s = _time_best(run, reps)
        profiler = obs.KernelProfiler(per_level=True)
        with obs.profiled(profiler=profiler):
            enabled_s = _time_best(run, reps)
        rows.append({
            "workload": name,
            "hook_pairs": pairs,
            "pair_cost_ns": pair_cost * 1e9,
            "disabled_s": disabled_s,
            "enabled_s": enabled_s,
            # The guarded quantity: an upper bound on what the disabled
            # instrumentation can cost, as a fraction of kernel time.
            "bound_overhead": pairs * pair_cost / disabled_s,
            "enabled_ratio": enabled_s / disabled_s,
        })
    return rows


def _obs_table(rows):
    from repro.reporting import Table

    table = Table(
        "obs: disabled-hook overhead bound (budget "
        f"{OVERHEAD_BUDGET:.0%} of kernel time)",
        ["workload", "pairs", "pair (ns)", "disabled (ms)", "enabled (ms)",
         "bound", "enabled x"],
    )
    for row in rows:
        table.add_row(
            row["workload"], row["hook_pairs"], row["pair_cost_ns"],
            row["disabled_s"] * 1e3, row["enabled_s"] * 1e3,
            f"{row['bound_overhead']:.4%}", row["enabled_ratio"],
        )
    return table


def test_disabled_overhead_budget(once):
    """Disabled instrumentation bounded under 2% on both workloads."""
    from conftest import record_table

    def _check():
        rows = run_obs_bench()
        record_table(_obs_table(rows))
        for row in rows:
            assert row["bound_overhead"] < OVERHEAD_BUDGET, row

    once(_check)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    rows = run_obs_bench(quick)
    print(f"bench_obs: {'quick' if quick else 'full'} mode")
    print(_obs_table(rows).render())
    worst = max(row["bound_overhead"] for row in rows)
    print(f"\nworst disabled-overhead bound: {worst:.4%} "
          f"(budget {OVERHEAD_BUDGET:.0%})")
    if "--json" in argv:
        from jsonout import write_bench_json

        path = write_bench_json(
            "obs", rows,
            {"worst_bound_overhead": worst, "budget": OVERHEAD_BUDGET},
        )
        print(f"wrote {path}")
    if worst >= OVERHEAD_BUDGET:
        print("FAIL: disabled instrumentation bound exceeds budget",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
