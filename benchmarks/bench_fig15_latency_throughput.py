"""Fig 15: latency and throughput, 6 functions x 3 robots vs 4 platforms.

Regenerates both columns of Fig 15 (latency bars vs the CPUs, throughput
bars vs CPUs and GPUs) and checks the Section VI-A summary ratios:

    latency:    0.12x-0.55x (avg 0.29x) vs AGX CPU;
                0.34x-1.91x (avg 0.82x) vs i9-13900HX
    throughput: avg 19.2x vs AGX CPU, 7.2x vs AGX GPU,
                8.2x vs i9, 1.4x vs RTX 4090M
"""

import numpy as np
import pytest

from conftest import record_table
from repro.baselines import calibration
from repro.baselines.cpu import CpuDynamicsModel
from repro.baselines.gpu import GpuDynamicsModel
from repro.baselines.platforms import (
    AGX_ORIN_CPU,
    AGX_ORIN_GPU,
    I9_13900HX,
    RTX_4090M,
)
from repro.dynamics.functions import RBDFunction
from repro.reporting import Table, ratio_line

FUNCS = [
    RBDFunction.ID, RBDFunction.FD, RBDFunction.M,
    RBDFunction.MINV, RBDFunction.DID, RBDFunction.DFD,
]
BATCH = calibration.THROUGHPUT_BATCH


def _cells(accelerators):
    cells = []
    for name, acc in accelerators.items():
        robot = acc.model
        cpu_agx = CpuDynamicsModel(AGX_ORIN_CPU, robot)
        cpu_i9 = CpuDynamicsModel(I9_13900HX, robot)
        gpu_agx = GpuDynamicsModel(AGX_ORIN_GPU, robot)
        gpu_m = GpuDynamicsModel(RTX_4090M, robot)
        for f in FUNCS:
            cells.append({
                "robot": name,
                "func": f.value,
                "ours_lat_us": acc.latency_seconds(f) * 1e6,
                "agx_cpu_lat_us": cpu_agx.latency_seconds(f) * 1e6,
                "i9_lat_us": cpu_i9.latency_seconds(f) * 1e6,
                "ours_thr": acc.throughput_tasks_per_s(f, BATCH),
                "agx_cpu_thr": cpu_agx.throughput_tasks_per_s(f, BATCH),
                "agx_gpu_thr": gpu_agx.throughput_tasks_per_s(f, BATCH),
                "i9_thr": cpu_i9.throughput_tasks_per_s(f, BATCH),
                "rtx4090_thr": gpu_m.throughput_tasks_per_s(f, BATCH),
            })
    return cells


@pytest.fixture(scope="module")
def cells(accelerators):
    return _cells(accelerators)


def test_fig15_report(once, cells):
    """Emit the full Fig 15 table plus the summary-ratio comparison."""
    def _report():
        for metric, unit, keys in (
            ("latency", "us", ["ours_lat_us", "agx_cpu_lat_us", "i9_lat_us"]),
            ("throughput", "Mtasks/s",
             ["ours_thr", "agx_cpu_thr", "agx_gpu_thr", "i9_thr", "rtx4090_thr"]),
        ):
            table = Table(
                f"Fig 15 {metric} ({unit}, batch {BATCH})",
                ["robot", "func"] + [k.replace("_us", "").replace("_thr", "")
                                     for k in keys],
            )
            for c in cells:
                scale = 1e-6 if metric == "throughput" else 1.0
                table.add_row(c["robot"], c["func"],
                              *[c[k] * scale for k in keys])
            record_table(table)

        lat_agx = np.mean([c["ours_lat_us"] / c["agx_cpu_lat_us"] for c in cells])
        lat_i9 = np.mean([c["ours_lat_us"] / c["i9_lat_us"] for c in cells])
        thr = {
            "AGX CPU": (np.mean([c["ours_thr"] / c["agx_cpu_thr"] for c in cells]),
                        calibration.THROUGHPUT_RATIO_VS_AGX_CPU[1]),
            "AGX GPU": (np.mean([c["ours_thr"] / c["agx_gpu_thr"] for c in cells]),
                        calibration.THROUGHPUT_RATIO_VS_AGX_GPU[1]),
            "i9-13900HX": (np.mean([c["ours_thr"] / c["i9_thr"] for c in cells]),
                           calibration.THROUGHPUT_RATIO_VS_I9[1]),
            "RTX 4090M": (np.mean([c["ours_thr"] / c["rtx4090_thr"] for c in cells]),
                          calibration.THROUGHPUT_RATIO_VS_RTX4090M[1]),
        }
        lines = [
            ratio_line("latency ratio vs AGX CPU", lat_agx,
                       calibration.LATENCY_RATIO_VS_AGX_CPU[1]),
            ratio_line("latency ratio vs i9", lat_i9,
                       calibration.LATENCY_RATIO_VS_I9[1]),
        ]
        for name, (measured, paper) in thr.items():
            lines.append(ratio_line(f"throughput ratio vs {name}", measured, paper))
        record_table("== Fig 15 / Section VI-A summary ratios ==\n" + "\n".join(lines))

        # Shape assertions: we beat the embedded CPU in every cell, and the
        # embedded GPU on average (the paper's 7.2x claim; our Atlas FD
        # cell dips below parity, a fidelity gap recorded in EXPERIMENTS.md).
        for c in cells:
            assert c["ours_thr"] > c["agx_cpu_thr"]
        assert thr["AGX GPU"][0] > 3.5

    once(_report)

@pytest.mark.parametrize("robot", ["iiwa", "hyq", "atlas"])
@pytest.mark.parametrize("func", FUNCS, ids=lambda f: f.value)
def test_latency_benchmark(benchmark, accelerators, robot, func):
    """pytest-benchmark target: single-task latency evaluation."""
    acc = accelerators[robot]
    result = benchmark(acc.latency_seconds, func)
    benchmark.extra_info["latency_us"] = result * 1e6


@pytest.mark.parametrize("robot", ["iiwa", "hyq", "atlas"])
def test_throughput_benchmark(benchmark, accelerators, robot):
    """pytest-benchmark target: batched diFD throughput evaluation."""
    acc = accelerators[robot]
    result = benchmark(acc.throughput_tasks_per_s, RBDFunction.DIFD, BATCH)
    benchmark.extra_info["throughput_Mtasks_s"] = result / 1e6
