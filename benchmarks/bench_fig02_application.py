"""Fig 2: the motivating application profile.

(b) multithreaded CPU runtime saturates as threads increase;
(c) the task breakdown: LQ approximation dominates, with "Derivatives of
    Dynamics" at 23.61% of the iteration.
"""

import pytest

from conftest import record_table
from repro.apps.mpc import TaskMix, multithread_profile
from repro.baselines import calibration
from repro.baselines.platforms import AGX_ORIN_CPU
from repro.apps.mpc import EndToEndModel
from repro.model.library import quadruped_arm
from repro.reporting import Table, ratio_line


@pytest.fixture(scope="module")
def robot():
    return quadruped_arm()


def test_fig2b_thread_saturation(once, robot):
    def _report():
        curve = multithread_profile(robot, AGX_ORIN_CPU, max_threads=12)
        table = Table("Fig 2b: relative iteration time vs threads",
                      ["threads", "relative_time"])
        for threads, rel in curve:
            table.add_row(threads, rel)
        times = dict(curve)
        best = min(times, key=times.get)
        table.add_note(
            f"best at {best} threads; improvement beyond "
            f"{calibration.FIG2B_SATURATION_THREADS} threads is marginal"
        )
        record_table(table)

        # Saturation: adding threads beyond ~8 changes nothing meaningful.
        assert abs(times[12] - times[8]) < 0.08
        # But the first few threads do help.
        assert times[4] < 0.75 * times[1]

    once(_report)

def test_fig2c_task_breakdown(once, robot, quadruped_acc):
    def _report():
        e2e = EndToEndModel(robot, AGX_ORIN_CPU, quadruped_acc, cpu_threads=4)
        shares = e2e.cpu_breakdown().shares()
        table = Table("Fig 2c: task breakdown of one MPC iteration",
                      ["task", "share"])
        for task, share in shares.items():
            table.add_row(task, share)
        table.add_note(ratio_line(
            "Derivatives of Dynamics share", shares["dFD"],
            calibration.FIG2C_DERIVATIVES_SHARE,
        ))
        record_table(table)

        assert shares["dFD"] == pytest.approx(
            calibration.FIG2C_DERIVATIVES_SHARE, rel=0.2
        )
        lq_approximation = 1.0 - shares["other"]
        assert lq_approximation > 0.4     # "the parallelizable part is large"

    once(_report)

def test_fig2b_benchmark(benchmark, robot):
    """pytest-benchmark target: the thread-sweep computation."""
    benchmark(multithread_profile, robot, AGX_ORIN_CPU, TaskMix(), 12)
