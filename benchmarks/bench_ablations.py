"""Ablations of the design choices DESIGN.md calls out.

Each ablation flips one optimization of Sections IV-V and measures its
effect on resources, throughput, or latency:

* Fig 7c     — dRNEA submodule cost grows with joint depth;
* IV-A1      — sparsity/constant optimization of the datapath;
* IV-A2      — recompute vs buffer-and-transfer the joint transforms;
* IV-A3      — lazy update of backward-loop read-modify-writes;
* IV-A4      — incremental column vectors;
* IV-B2      — fixed-point reciprocal via the float trick;
* V-C1       — symmetric-branch time-division multiplexing;
* V-C1/Fig11c — tree re-rooting (Atlas depth 11 -> 9);
* V-C5       — floating-base splitting.
"""

import numpy as np
import pytest

from conftest import record_table
from repro.core import DaduRBD, PAPER_CONFIG
from repro.core.config import SAPConfig
from repro.core.costmodel import CostModel, SubmoduleKind
from repro.core.fixedpoint import FixedPointFormat, fixed_reciprocal
from repro.core.saps import organize
from repro.dynamics.functions import RBDFunction
from repro.model.library import atlas, hyq, iiwa
from repro.reporting import Table

#: Ablation builds must not auto-retune: hold the II budgets fixed so the
#: resource deltas are attributable to the toggled feature.
FROZEN = PAPER_CONFIG.with_(auto_fit_ii=False)


def _resources(config, builder=iiwa):
    org = organize(builder(), config)
    cost = CostModel(org.timing_model, config)
    from repro.core.resources import ResourceModel

    return ResourceModel(org, cost).report()


def test_fig7c_cost_grows_with_depth(once, iiwa_acc):
    """Fig 7c: resource usage of Df submodules by pipeline level."""
    def _report():
        cost = iiwa_acc.cost
        table = Table("Fig 7c: dRNEA forward submodule cost by level",
                      ["level", "ops", "lanes"])
        lanes = []
        for link in range(7):
            budget = cost.budget(SubmoduleKind.DF, link)
            lanes.append(budget.parallelism)
            table.add_row(link + 1, budget.ops, budget.parallelism)
        record_table(table)
        assert lanes == sorted(lanes)
        assert lanes[-1] > 4 * lanes[0]

    once(_report)

def test_sparsity_ablation(once):
    """IV-A1: a dense datapath costs significantly more DSP."""
    def _report():
        sparse = _resources(FROZEN)
        dense = _resources(FROZEN.with_(sparse_datapath=False))
        table = Table("Ablation IV-A1: sparsity/constant optimization",
                      ["variant", "lanes", "DSP"])
        table.add_row("sparse (paper)", sparse.total_lanes,
                      f"{sparse.dsp_utilization:.0%}")
        table.add_row("dense", dense.total_lanes, f"{dense.dsp_utilization:.0%}")
        record_table(table)
        assert dense.total_lanes > 1.2 * sparse.total_lanes

    once(_report)

def test_lazy_update_ablation(once):
    """IV-A3: without lazy updates the RNEA pipeline II doubles."""
    def _report():
        on = DaduRBD(iiwa(), FROZEN)
        off = DaduRBD(iiwa(), FROZEN.with_(lazy_update=False))
        ii_on = on.initiation_interval(RBDFunction.ID)
        ii_off = off.initiation_interval(RBDFunction.ID)
        table = Table("Ablation IV-A3: lazy update", ["variant", "ID II (cyc)",
                      "ID throughput (M/s)"])
        table.add_row("lazy (paper)", ii_on,
                      on.throughput_tasks_per_s(RBDFunction.ID, 256) / 1e6)
        table.add_row("sequential", ii_off,
                      off.throughput_tasks_per_s(RBDFunction.ID, 256) / 1e6)
        record_table(table)
        assert ii_off > 1.5 * ii_on

    once(_report)

def test_incremental_columns_ablation(once):
    """IV-A4: full-width derivative matrices waste area."""
    def _report():
        on = _resources(FROZEN)
        off = _resources(FROZEN.with_(incremental_columns=False))
        table = Table("Ablation IV-A4: incremental column vectors",
                      ["variant", "lanes"])
        table.add_row("incremental (paper)", on.total_lanes)
        table.add_row("full-width", off.total_lanes)
        record_table(table)
        assert off.total_lanes > 1.3 * on.total_lanes

    once(_report)

def test_branch_sharing_ablation(once):
    """V-C1: multiplexing symmetric legs saves area on HyQ."""
    def _report():
        shared = _resources(FROZEN, hyq)
        private = _resources(
            FROZEN.with_(sap=SAPConfig(share_symmetric_branches=False)), hyq
        )
        table = Table("Ablation V-C1: symmetric-branch sharing (HyQ)",
                      ["variant", "stages", "lanes", "LUT", "FF"])
        table.add_row("2 legs/array (paper)", shared.stage_count,
                      shared.total_lanes, f"{shared.lut_utilization:.0%}",
                      f"{shared.ff_utilization:.0%}")
        table.add_row("1 leg/array", private.stage_count,
                      private.total_lanes, f"{private.lut_utilization:.0%}",
                      f"{private.ff_utilization:.0%}")
        table.add_note(
            "multiplexing halves the submodule *instance* count (stage "
            "controllers, FIFOs, parameter ROMs); MAC lanes migrate to the "
            "shared instances"
        )
        record_table(table)
        # Two legs per array: half the leg-stage instances, cheaper LUT/FF.
        assert private.stage_count > 1.4 * shared.stage_count
        assert private.lut > shared.lut
        assert private.ff > shared.ff

    once(_report)

def test_reroot_ablation(once):
    """Fig 11c: re-rooting Atlas cuts depth and deep-submodule cost."""
    def _report():
        on = organize(atlas(), FROZEN)
        off = organize(atlas(), FROZEN.with_(sap=SAPConfig(reroot_tree=False)))
        res_on = _resources(FROZEN, atlas)
        res_off = _resources(FROZEN.with_(sap=SAPConfig(reroot_tree=False)), atlas)
        table = Table("Ablation Fig 11c: Atlas re-rooting",
                      ["variant", "tree depth", "lanes"])
        table.add_row(f"re-rooted at {on.rerooted_at} (paper)",
                      on.reroot_depths[1], res_on.total_lanes)
        table.add_row("pelvis root", atlas().max_depth(), res_off.total_lanes)
        record_table(table)
        assert on.reroot_depths == (11, 9)
        assert res_on.total_lanes < res_off.total_lanes

    once(_report)

def test_float_split_ablation(once):
    """V-C5: splitting the floating base halves the root submodule cost."""
    def _report():
        split = organize(hyq(), FROZEN)
        whole = organize(
            hyq(), FROZEN.with_(sap=SAPConfig(split_floating_base=False))
        )
        cost_split = CostModel(split.timing_model, FROZEN)
        cost_whole = CostModel(whole.timing_model, FROZEN)
        root_split = max(
            cost_split.ops(SubmoduleKind.RF, 0), cost_split.ops(SubmoduleKind.RF, 1)
        )
        root_whole = cost_whole.ops(SubmoduleKind.RF, 0)
        table = Table("Ablation V-C5: floating-base split (HyQ root Rf ops)",
                      ["variant", "ops"])
        table.add_row("split (paper)", root_split)
        table.add_row("6-DOF joint", root_whole)
        record_table(table)
        assert root_split < root_whole

    once(_report)

def test_reupdate_transforms_ablation(once):
    """IV-A2: recomputing X in backward submodules vs transferring it."""
    def _report():
        reupdate = _resources(FROZEN)
        transfer = _resources(FROZEN.with_(reupdate_transforms=False))
        table = Table("Ablation IV-A2: reupdate vs transfer X (iiwa)",
                      ["variant", "lanes", "FF", "LUT"])
        table.add_row("recompute X (paper)", reupdate.total_lanes,
                      f"{reupdate.ff_utilization:.1%}",
                      f"{reupdate.lut_utilization:.1%}")
        table.add_row("buffer + transfer X", transfer.total_lanes,
                      f"{transfer.ff_utilization:.1%}",
                      f"{transfer.lut_utilization:.1%}")
        table.add_note(
            "recomputation costs a few multiplies (the X refresh is 8 "
            "mults for a revolute joint) but avoids 36 extra words of "
            "FIFO payload per backward stream"
        )
        record_table(table)
        # Transferring X saves a few lanes but costs more FF/LUT overall.
        assert transfer.total_lanes <= reupdate.total_lanes
        assert transfer.ff > reupdate.ff
        assert transfer.lut > reupdate.lut

    once(_report)


def test_fixed_point_reciprocal_speed_model(once):
    """IV-B2: the float-trick reciprocal needs only ~2 Newton steps."""
    def _report():
        fmt = FixedPointFormat(16, 20)
        rng = np.random.default_rng(0)
        values = rng.uniform(0.05, 100.0, size=200)
        errors = [abs(fixed_reciprocal(v, fmt, 2) * v - 1.0) for v in values]
        table = Table("Ablation IV-B2: fixed-point reciprocal accuracy",
                      ["refinements", "max |x*recip(x)-1|"])
        for refinements in (0, 1, 2, 3):
            errs = [abs(fixed_reciprocal(v, fmt, refinements) * v - 1.0)
                    for v in values]
            table.add_row(refinements, max(errs))
        record_table(table)
        assert max(errors) < 1e-4

    once(_report)

@pytest.mark.parametrize("toggle", ["sparse_datapath", "incremental_columns",
                                    "lazy_update"])
def test_ablation_benchmark(benchmark, toggle):
    """pytest-benchmark target: building an ablated iiwa accelerator."""
    config = FROZEN.with_(**{toggle: False})
    benchmark(DaduRBD, iiwa(), config)
