"""Fig 17: batched dFD (iiwa) vs AGX Orin GPU and RTX 4090M, batch 16-8192.

The paper's claims: GPUs want batch >= 1024; the RTX 4090M overtakes
Dadu-RBD beyond batch ~512; Dadu-RBD's time stays linear in batch size
once the pipeline is saturated (so its curve "will not fluctuate").
"""

import pytest

from conftest import record_table
from repro.baselines import calibration
from repro.baselines.gpu import GpuDynamicsModel
from repro.baselines.platforms import AGX_ORIN_GPU, RTX_4090M
from repro.dynamics.functions import RBDFunction
from repro.model.library import iiwa
from repro.reporting import Table

BATCHES = calibration.FIG17_BATCHES


@pytest.fixture(scope="module")
def gpus():
    robot = iiwa()
    return {
        "agx": GpuDynamicsModel(AGX_ORIN_GPU, robot),
        "rtx4090m": GpuDynamicsModel(RTX_4090M, robot),
    }


def test_fig17_report(once, iiwa_acc, gpus):
    def _report():
        table = Table(
            "Fig 17: batched dFD time (iiwa, us)",
            ["batch", "ours", "rtx4090m", "agx_gpu", "winner"],
        )
        crossover = None
        for batch in BATCHES:
            ours = iiwa_acc.batch_seconds(RBDFunction.DFD, batch) * 1e6
            rtx = gpus["rtx4090m"].batch_seconds(RBDFunction.DFD, batch) * 1e6
            agx = gpus["agx"].batch_seconds(RBDFunction.DFD, batch) * 1e6
            winner = "ours" if ours <= min(rtx, agx) else "rtx4090m"
            if winner != "ours" and crossover is None:
                crossover = batch
            table.add_row(batch, ours, rtx, agx, winner)
        table.add_note(
            f"measured crossover at batch {crossover} "
            f"(paper: > {calibration.FIG17_CROSSOVER_BATCH})"
        )
        record_table(table)

        # The paper's crossover claim: 4090M wins only above batch 512.
        assert crossover is not None
        assert calibration.FIG17_CROSSOVER_BATCH < crossover <= 2048

        # Our curve is linear once saturated (ratio of time to batch constant).
        t1 = iiwa_acc.batch_seconds(RBDFunction.DFD, 1024) / 1024
        t2 = iiwa_acc.batch_seconds(RBDFunction.DFD, 8192) / 8192
        assert abs(t1 - t2) / t1 < 0.05

    once(_report)

def test_agx_gpu_always_slower(once, iiwa_acc, gpus):
    def _report():
        for batch in BATCHES:
            assert (
                gpus["agx"].batch_seconds(RBDFunction.DFD, batch)
                > iiwa_acc.batch_seconds(RBDFunction.DFD, batch)
            )

    once(_report)

@pytest.mark.parametrize("batch", [16, 256, 8192])
def test_batched_dfd_benchmark(benchmark, iiwa_acc, batch):
    """pytest-benchmark target: one Fig 17 batch evaluation."""
    seconds = benchmark(iiwa_acc.batch_seconds, RBDFunction.DFD, batch)
    benchmark.extra_info["batch_us"] = seconds * 1e6
