"""Process-pool engine vs single-process compiled engine throughput.

The compiled engine saturates one core; the ``"process"`` engine splits
each coalesced batch across a persistent worker pool and runs the
compiled kernels in every worker (:mod:`repro.dynamics.process`).  This
bench measures the end it exists for: *mixed-function multi-robot
throughput* at the accelerator's native batch size — the serve runtime's
steady state, where every flushed batch is another chance to use the
other cores.

Acceptance anchors: on a multi-core runner the process engine must
sustain >= 1.5x the compiled engine on the mixed workload at batch 256
(the CI smoke floor is >= 1.0x — CI cores are few and shared).  On a
single-core host the pool cannot split usefully; the engine's inline
fallback makes it equivalent to ``"compiled"``, and the floor is relaxed
to 0.9x (pure timing noise between two identical code paths).

Runs under pytest or directly for CI smoke::

    PYTHONPATH=src python benchmarks/bench_process.py --quick --json
"""

import os
import sys
import time

import numpy as np

from repro.dynamics import BatchStates, batch_evaluate
from repro.dynamics.functions import RBDFunction
from repro.dynamics.process import ProcessEngine
from repro.model.library import load_robot

#: The mixed serve workload: two branched robots and the serial arm,
#: plain FD plus the derivative-heavy dFD (the Fig 2c MPC mix).
WORKLOAD = (
    ("iiwa", RBDFunction.FD),
    ("iiwa", RBDFunction.DFD),
    ("hyq", RBDFunction.FD),
    ("hyq", RBDFunction.DFD),
    ("quadruped_arm", RBDFunction.FD),
    ("quadruped_arm", RBDFunction.DFD),
)
QUICK_WORKLOAD = (
    ("hyq", RBDFunction.DFD),
    ("quadruped_arm", RBDFunction.DFD),
)
BATCH = 256
MULTI_CORE_TARGET = 1.5
SMOKE_FLOOR = 1.0
#: Single-core floor: the process engine falls back to inline compiled
#: execution (identical code path), so only timing noise separates the
#: two measurements.
SINGLE_CORE_FLOOR = 0.9


def smoke_floor(cores: int | None = None) -> float:
    cores = cores if cores is not None else (os.cpu_count() or 1)
    return SMOKE_FLOOR if cores > 1 else SINGLE_CORE_FLOOR


def _operands(workload, batch):
    out = []
    for robot, function in workload:
        model = load_robot(robot)
        states = BatchStates.random(model, batch, seed=0)
        u = np.random.default_rng(1).normal(size=(batch, model.nv))
        out.append((robot, function, model, states, u))
    return out


def _time_workload(operands, engine, reps: int) -> tuple[float, list[float]]:
    """Best-of-``reps`` total seconds for one pass over the workload,
    plus the per-pair timings of the best pass."""
    best_total = float("inf")
    best_each: list[float] = []
    for rep in range(reps + 1):   # rep 0 is warm-up (plan/pool build)
        each = []
        for _, function, model, states, u in operands:
            t0 = time.perf_counter()
            batch_evaluate(model, function, states, u, engine=engine)
            each.append(time.perf_counter() - t0)
        total = sum(each)
        if rep == 0:
            continue
        if total < best_total:
            best_total, best_each = total, each
    return best_total, best_each


def run_process_bench(workload=WORKLOAD, batch: int = BATCH,
                      reps: int = 5, engine: ProcessEngine | None = None):
    """Rows per (robot, function) plus the mixed-throughput summary."""
    operands = _operands(workload, batch)
    process_engine = engine or ProcessEngine()
    compiled_total, compiled_each = _time_workload(operands, "compiled",
                                                   reps)
    process_total, process_each = _time_workload(operands, process_engine,
                                                 reps)
    rows = []
    for (robot, function, _, _, _), c_s, p_s in zip(
        operands, compiled_each, process_each
    ):
        rows.append({
            "robot": robot,
            "function": function,
            "batch": batch,
            "engine": "process",
            "backend": "numpy",
            "compiled_s": c_s,
            "process_s": p_s,
            "speedup": c_s / p_s,
        })
    requests = batch * len(operands)
    summary = {
        "workers": process_engine.n_workers,
        "pool_started": process_engine.started,
        "batch": batch,
        "compiled_total_s": compiled_total,
        "process_total_s": process_total,
        "compiled_rps": requests / compiled_total,
        "process_rps": requests / process_total,
        "speedup": compiled_total / process_total,
        "smoke_floor": smoke_floor(),
        "multi_core_target": MULTI_CORE_TARGET,
    }
    return rows, summary


def _process_table(rows, summary):
    from repro.reporting import Table

    table = Table(
        f"process engine vs compiled ({summary['workers']} worker(s), "
        f"batch {summary['batch']})",
        ["robot", "function", "compiled (ms)", "process (ms)", "speedup"],
    )
    for row in rows:
        table.add_row(row["robot"], row["function"].value,
                      row["compiled_s"] * 1e3, row["process_s"] * 1e3,
                      row["speedup"])
    return table


def test_process_engine_throughput(once):
    """process >= compiled on the mixed workload (>= 1.5x multi-core)."""
    from conftest import record_table

    def _run():
        engine = ProcessEngine()
        rows, summary = run_process_bench(engine=engine)
        record_table(_process_table(rows, summary))
        record_table(
            "== process-engine mixed throughput ==\n"
            f"compiled: {summary['compiled_rps']:.0f} req/s   "
            f"process: {summary['process_rps']:.0f} req/s   "
            f"speedup {summary['speedup']:.2f}x (floor "
            f"{summary['smoke_floor']:.1f}x, multi-core target "
            f"{MULTI_CORE_TARGET:.1f}x)"
        )
        engine.shutdown()
        assert summary["speedup"] >= summary["smoke_floor"]

    once(_run)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    workload = QUICK_WORKLOAD if quick else WORKLOAD
    reps = 3 if quick else 5
    engine = ProcessEngine()
    rows, summary = run_process_bench(workload, BATCH, reps, engine)
    print(f"bench_process: {'quick' if quick else 'full'} mode, "
          f"{summary['workers']} worker(s), batch {BATCH}")
    print(_process_table(rows, summary).render())
    print(f"\nmixed-function multi-robot throughput: "
          f"compiled {summary['compiled_rps']:.0f} req/s, "
          f"process {summary['process_rps']:.0f} req/s "
          f"-> {summary['speedup']:.2f}x "
          f"(floor {summary['smoke_floor']:.1f}x)")
    if "--json" in argv:
        from jsonout import write_bench_json

        path = write_bench_json("process", rows, summary)
        print(f"wrote {path}")
    engine.shutdown()
    if summary["speedup"] < summary["smoke_floor"]:
        print("FAIL: process engine below smoke floor", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
