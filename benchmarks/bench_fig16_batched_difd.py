"""Fig 16: batched diFD (iiwa) vs i7-7700 CPU, RTX 2080, Robomorphic.

The paper reports, per batch size, Dadu-RBD's speedup over the three
platforms of Plancher et al. [33] and Robomorphic [12]:

    batch 16:  7.0x FPGA, 13.0x CPU, 11.3x GPU
    batch 128: 6.3x FPGA, 10.3x CPU,  3.4x GPU

plus the latency anchor: ours 0.76 us vs Robomorphic 0.61 us.
"""

import pytest

from conftest import record_table
from repro.baselines import calibration
from repro.baselines.cpu import CpuDynamicsModel
from repro.baselines.gpu import GpuDynamicsModel
from repro.baselines.platforms import I7_7700, RTX_2080
from repro.baselines.robomorphic import RobomorphicModel
from repro.dynamics.functions import RBDFunction
from repro.model.library import iiwa
from repro.reporting import Table, ratio_line

BATCHES = (16, 32, 64, 128)


@pytest.fixture(scope="module")
def platforms():
    robot = iiwa()
    return {
        "robomorphic": RobomorphicModel(robot),
        "cpu": CpuDynamicsModel(I7_7700, robot),
        "gpu": GpuDynamicsModel(RTX_2080, robot),
    }


def test_fig16_report(once, iiwa_acc, platforms):
    def _report():
        table = Table(
            "Fig 16: batched diFD speedups (iiwa)",
            ["batch", "ours_us", "fpga_x", "paper", "cpu_x", "paper", "gpu_x",
             "paper"],
        )
        for batch in BATCHES:
            ours = iiwa_acc.batch_seconds(RBDFunction.DIFD, batch)
            fpga = platforms["robomorphic"].batch_seconds(RBDFunction.DIFD, batch)
            cpu = platforms["cpu"].batch_seconds(RBDFunction.DIFD, batch)
            gpu = platforms["gpu"].batch_seconds(RBDFunction.DIFD, batch)
            paper = calibration.FIG16_SPEEDUPS[batch]
            table.add_row(
                batch, ours * 1e6,
                fpga / ours, paper[0],
                cpu / ours, paper[1],
                gpu / ours, paper[2],
            )
        lat_ours = iiwa_acc.latency_seconds(RBDFunction.DIFD) * 1e6
        table.add_note(ratio_line(
            "diFD latency (us)", lat_ours, calibration.DIFD_IIWA_LATENCY_US_OURS
        ))
        table.add_note(
            "Robomorphic latency anchored at "
            f"{calibration.DIFD_IIWA_LATENCY_US_ROBOMORPHIC} us"
        )
        record_table(table)

        # Shape: we beat every platform at every batch size, and the GPU gap
        # narrows with batch while the FPGA gap stays flat.
        gpu_ratios = []
        for batch in BATCHES:
            ours = iiwa_acc.batch_seconds(RBDFunction.DIFD, batch)
            assert platforms["robomorphic"].batch_seconds(
                RBDFunction.DIFD, batch) > ours
            assert platforms["cpu"].batch_seconds(RBDFunction.DIFD, batch) > ours
            assert platforms["gpu"].batch_seconds(RBDFunction.DIFD, batch) > ours
            gpu_ratios.append(
                platforms["gpu"].batch_seconds(RBDFunction.DIFD, batch) / ours
            )
        assert gpu_ratios[-1] < gpu_ratios[0]

    once(_report)

@pytest.mark.parametrize("batch", BATCHES)
def test_batched_difd_benchmark(benchmark, iiwa_acc, batch):
    """pytest-benchmark target: one Fig 16 batch evaluation."""
    seconds = benchmark(iiwa_acc.batch_seconds, RBDFunction.DIFD, batch)
    benchmark.extra_info["batch_us"] = seconds * 1e6
