"""Extensions the paper states but does not implement.

* **ABA on the Backward-Forward Module** (Section V-B4: "It has the
  potential to implement the ABA algorithm, but due to resource constraints
  we do not currently implement it") — we implement it and quantify the
  trade the authors made.
* **Multi-SAP replication** (Section VI-A: "If we want to further improve
  throughput, we can instantiate multiple SAPs") — we replicate and show
  the throughput scaling and the chip limit.
"""

import pytest

from conftest import record_table
from repro.core import DaduRBD, PAPER_CONFIG
from repro.dynamics.functions import RBDFunction
from repro.model.library import iiwa, serial_chain
from repro.reporting import Table


def test_aba_fd_option(once, iiwa_acc):
    def _report():
        aba_acc = DaduRBD(iiwa(), PAPER_CONFIG.with_(enable_aba_fd=True))
        table = Table(
            "Extension V-B4: FD via ABA on the BF module (iiwa)",
            ["variant", "FD latency (us)", "FD II (cyc)", "DSP"],
        )
        for name, acc in (("Minv route (paper)", iiwa_acc),
                          ("ABA on BF module", aba_acc)):
            table.add_row(
                name,
                acc.latency_seconds(RBDFunction.FD) * 1e6,
                acc.initiation_interval(RBDFunction.FD),
                f"{acc.resources().dsp_utilization:.1%}",
            )
        table.add_note(
            "the ABA option buys no throughput (both II-bound) and costs "
            "extra BF-stage area — matching the paper's decision to skip it"
        )
        record_table(table)

        # The quantified trade: never cheaper, no II win.
        assert aba_acc.resources().dsp >= iiwa_acc.resources().dsp
        assert aba_acc.initiation_interval(RBDFunction.FD) >= (
            0.99 * iiwa_acc.initiation_interval(RBDFunction.FD)
        )

    once(_report)


def test_multi_sap_scaling(once):
    def _report():
        small = serial_chain(3, seed=1)
        table = Table(
            "Extension VI-A: multi-SAP replication (3-link arm)",
            ["replicas", "DSP", "dID thr (M/s)", "heavy II"],
        )
        throughputs = []
        for replicas in (1, 2, 3, 4):
            acc = DaduRBD(small, PAPER_CONFIG.with_(sap_replicas=replicas))
            report = acc.resources()
            thr = acc.throughput_tasks_per_s(RBDFunction.DID, 256) / 1e6
            throughputs.append(thr)
            table.add_row(
                replicas, f"{report.dsp_utilization:.0%}", thr,
                acc.config.heavy_ii_cycles,
            )
        table.add_note(
            "replication scales throughput linearly until the DSP budget "
            "forces the auto-fit tuner to trade II for area"
        )
        record_table(table)

        assert throughputs[1] == pytest.approx(2 * throughputs[0], rel=0.05)
        # The 4th replica no longer scales perfectly: the chip is full.
        assert throughputs[3] < 4.2 * throughputs[0]

    once(_report)


def test_iiwa_cannot_fit_second_sap(once, iiwa_acc):
    """The paper-scale robots fill the chip: a second full-rate SAP does
    not fit (Robomorphic reported the same limitation)."""
    def _report():
        doubled = DaduRBD(iiwa(), PAPER_CONFIG.with_(sap_replicas=2))
        # Auto-fit had to raise the heavy II to squeeze two SAPs in.
        assert doubled.config.heavy_ii_cycles > iiwa_acc.config.heavy_ii_cycles
        assert doubled.resources().dsp_utilization <= (
            doubled.config.dsp_budget + 1e-9
        )
        table = Table(
            "Extension VI-A: two SAPs for iiwa need slower heavy stages",
            ["replicas", "heavy II", "DSP", "dID thr (M/s)"],
        )
        for acc in (iiwa_acc, doubled):
            table.add_row(
                acc.config.sap_replicas, acc.config.heavy_ii_cycles,
                f"{acc.resources().dsp_utilization:.0%}",
                acc.throughput_tasks_per_s(RBDFunction.DID, 256) / 1e6,
            )
        record_table(table)

    once(_report)


def test_design_space_sweep(once, iiwa_acc):
    """Section VI tuning: sweep the heavy-II budget and verify the shipped
    design point (II=10, 125 MHz) minimizes the energy-delay product among
    feasible builds — "performance and energy consumption reach a
    balance"."""
    def _report():
        from repro.core.explore import best_feasible_point, sweep_design_space
        from repro.model.library import iiwa as iiwa_builder

        points = sweep_design_space(iiwa_builder())
        table = Table(
            "Design-space sweep (iiwa, diFD)",
            ["heavy II", "DSP", "fits", "thr (M/s)", "power (W)", "EDP (fJ*s)"],
        )
        for p in points:
            table.add_row(
                p.heavy_ii_cycles, f"{p.dsp_utilization:.0%}",
                "yes" if p.fits else "no",
                p.throughput_tasks_per_s / 1e6, p.power_w, p.edp * 1e30 / 1e15,
            )
        best = best_feasible_point(points)
        table.add_note(
            f"best feasible EDP at heavy II = {best.heavy_ii_cycles} "
            "(the paper's shipped design point)"
        )
        record_table(table)
        assert best.heavy_ii_cycles == iiwa_acc.config.heavy_ii_cycles

    once(_report)


@pytest.mark.parametrize("replicas", [1, 2])
def test_replication_benchmark(benchmark, replicas):
    """pytest-benchmark target: building a replicated accelerator."""
    small = serial_chain(3, seed=1)
    benchmark(DaduRBD, small, PAPER_CONFIG.with_(sap_replicas=replicas))
