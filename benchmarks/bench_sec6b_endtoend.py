"""Section VI-B: the end-to-end application.

Claims reproduced: 11.2x speedup on the offloaded task kinds (FD, Minv,
derivatives of dynamics) and an 80% control-frequency increase over the
4-thread CPU implementation — plus the Fig 13 scheduling result that
serial RK4 sub-chains do not hurt pipeline utilization when independent
batch tasks are interleaved.
"""

import pytest

from conftest import record_table
from repro.apps.mpc import EndToEndModel
from repro.baselines import calibration
from repro.baselines.platforms import AGX_ORIN_CPU
from repro.core.scheduler import independent_batch, rk4_sensitivity_jobs
from repro.dynamics.functions import RBDFunction
from repro.model.library import quadruped_arm
from repro.reporting import Table


@pytest.fixture(scope="module")
def e2e(quadruped_acc):
    robot = quadruped_arm()
    return EndToEndModel(robot, AGX_ORIN_CPU, quadruped_acc, cpu_threads=4)


def test_endtoend_report(once, e2e):
    def _report():
        speedup = e2e.task_speedup()
        gain = e2e.control_frequency_gain()
        table = Table("Section VI-B: end-to-end application", ["metric",
                      "measured", "paper"])
        table.add_row("offloaded-task speedup", speedup,
                      calibration.ENDTOEND_TASK_SPEEDUP)
        table.add_row("control frequency gain", f"{gain:.0%}",
                      f"{calibration.ENDTOEND_CONTROL_FREQ_GAIN:.0%}")
        table.add_row("cpu-only frequency (Hz)",
                      e2e.control_frequency_hz(False), "-")
        table.add_row("accelerated frequency (Hz)",
                      e2e.control_frequency_hz(True), "-")
        record_table(table)

        assert speedup == pytest.approx(
            calibration.ENDTOEND_TASK_SPEEDUP, rel=0.25
        )
        assert gain == pytest.approx(
            calibration.ENDTOEND_CONTROL_FREQ_GAIN, rel=0.2
        )

    once(_report)

def test_fig13_rk4_scheduling(once, quadruped_acc):
    """Fig 13: serial RK4 sub-tasks alone leave bubbles; interleaving
    independent tasks recovers the pipeline's batch throughput."""
    def _report():
        acc = quadruped_acc
        chains = rk4_sensitivity_jobs(8)              # 8 points x 4 serial calls
        alone = acc.profile_batch(RBDFunction.FD, 0, jobs=chains)
        extra = independent_batch(32)
        mixed = acc.profile_batch(RBDFunction.FD, 0, jobs=chains + extra)
        only_extra = acc.profile_batch(RBDFunction.FD, 32)

        table = Table("Fig 13: RK4 chains + independent batch scheduling",
                      ["workload", "tasks", "makespan_us"])
        cycles_to_us = 1e6 / acc.config.clock_hz
        table.add_row("8 RK4 chains (32 serial tasks)", 32,
                      alone.makespan_cycles * cycles_to_us)
        table.add_row("32 independent tasks", 32,
                      only_extra.makespan_cycles * cycles_to_us)
        table.add_row("both interleaved", 64,
                      mixed.makespan_cycles * cycles_to_us)
        saved = (
            alone.makespan_cycles + only_extra.makespan_cycles
            - mixed.makespan_cycles
        )
        table.add_note(
            f"interleaving hides {saved * cycles_to_us:.1f} us of serial bubbles"
        )
        record_table(table)

        # The mixed schedule beats running the two workloads back to back.
        assert mixed.makespan_cycles < (
            alone.makespan_cycles + only_extra.makespan_cycles
        )

    once(_report)

def test_endtoend_benchmark(benchmark, e2e):
    """pytest-benchmark target: pricing one end-to-end comparison."""
    benchmark(e2e.control_frequency_gain)
