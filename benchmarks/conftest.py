"""Shared fixtures for the benchmark harness.

Accelerator builds are expensive (auto-fit searches II candidates), so they
are session-cached here.  Benches register their paper-vs-measured tables
through :func:`record_table`; a terminal-summary hook prints everything at
the end of the run so the comparison survives pytest's output capture.
"""

import pytest

from repro.core import DaduRBD
from repro.model.library import atlas, hyq, iiwa, quadruped_arm

_REPORT_BLOCKS: list[str] = []


def record_table(table) -> None:
    """Register a repro.reporting.Table (or string) for the final summary."""
    _REPORT_BLOCKS.append(table if isinstance(table, str) else table.render())


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORT_BLOCKS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "================ paper-vs-measured tables ================"
    )
    for block in _REPORT_BLOCKS:
        terminalreporter.write_line("")
        for line in block.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture
def once(benchmark):
    """Run a report computation exactly once, registered as a benchmark.

    The report tests regenerate paper tables; timing them repeatedly is
    pointless, but wiring them through the benchmark fixture keeps them
    alive under ``--benchmark-only``.
    """

    def run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return run


@pytest.fixture(scope="session")
def iiwa_acc():
    return DaduRBD(iiwa())


@pytest.fixture(scope="session")
def hyq_acc():
    return DaduRBD(hyq())


@pytest.fixture(scope="session")
def atlas_acc():
    return DaduRBD(atlas())


@pytest.fixture(scope="session")
def quadruped_acc():
    return DaduRBD(quadruped_arm())


@pytest.fixture(scope="session")
def accelerators(iiwa_acc, hyq_acc, atlas_acc):
    return {"iiwa": iiwa_acc, "hyq": hyq_acc, "atlas": atlas_acc}
