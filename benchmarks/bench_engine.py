"""Host-side speedup of the vectorized batch engine over the loop engine.

The paper's accelerator consumes 256-task batches (Section VI-A); the
serve runtime forms them, and the execution engine decides how fast the
host evaluates them.  This bench times the batch-native ``"vectorized"``
engine (loop over links, one array op per link-step across the whole
batch) against the per-task ``"loop"`` reference on the iiwa FD and dFD
workloads.

Acceptance anchor: the vectorized engine must be >= 5x faster than the
loop engine on iiwa FD at batch 256 (it is the engine ``repro.serve``
ships by default).

Runs under pytest (with the usual summary table) or directly for CI
smoke::

    PYTHONPATH=src python benchmarks/bench_engine.py --quick
"""

import sys
import time

import numpy as np

from repro.dynamics import BatchStates, batch_evaluate
from repro.dynamics.functions import RBDFunction
from repro.model.library import load_robot

ROBOT = "iiwa"
BATCH = 256
FUNCTIONS = (RBDFunction.FD, RBDFunction.DFD)
SPEEDUP_FLOOR = 5.0


def _time_engine(model, function, states, u, engine, reps) -> float:
    """Best-of-``reps`` wall seconds for one batched call."""
    batch_evaluate(model, function, states, u, engine=engine)   # warm-up
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        batch_evaluate(model, function, states, u, engine=engine)
        best = min(best, time.perf_counter() - t0)
    return best


def run_engine_bench(batch: int = BATCH,
                     functions=FUNCTIONS) -> dict[RBDFunction, dict]:
    """Per-function timings: {function: {loop_s, vectorized_s, speedup}}."""
    model = load_robot(ROBOT)
    states = BatchStates.random(model, batch, seed=0)
    u = np.random.default_rng(1).normal(size=(batch, model.nv))
    out = {}
    for function in functions:
        loop_s = _time_engine(model, function, states, u, "loop", reps=2)
        vec_s = _time_engine(model, function, states, u, "vectorized", reps=5)
        out[function] = {
            "loop_s": loop_s,
            "vectorized_s": vec_s,
            "speedup": loop_s / vec_s,
        }
    return out


def _engine_table(stats: dict[RBDFunction, dict], batch: int):
    from repro.reporting import Table

    table = Table(
        f"engine: {ROBOT} loop vs vectorized (batch {batch})",
        ["function", "loop (ms)", "vectorized (ms)", "speedup"],
    )
    for function, s in stats.items():
        table.add_row(function.value, s["loop_s"] * 1e3,
                      s["vectorized_s"] * 1e3, s["speedup"])
    return table


def test_vectorized_engine_speedup(once):
    """Vectorized engine >= 5x loop engine on iiwa FD at batch 256."""
    from conftest import record_table

    def _run():
        stats = run_engine_bench()
        record_table(_engine_table(stats, BATCH))
        fd = stats[RBDFunction.FD]["speedup"]
        dfd = stats[RBDFunction.DFD]["speedup"]
        record_table(
            f"== vectorized-engine speedup ({ROBOT}, batch {BATCH}) ==\n"
            f"FD:  {fd:.1f}x (floor {SPEEDUP_FLOOR:.0f}x)\n"
            f"dFD: {dfd:.1f}x"
        )
        assert fd >= SPEEDUP_FLOOR
        assert dfd >= SPEEDUP_FLOOR

    once(_run)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    batch = 64 if quick else BATCH
    stats = run_engine_bench(batch)
    print(f"bench_engine: {ROBOT}, batch {batch}")
    print(_engine_table(stats, batch).render())
    fd_speedup = stats[RBDFunction.FD]["speedup"]
    print(f"\nvectorized vs loop on FD: {fd_speedup:.1f}x "
          f"(floor {SPEEDUP_FLOOR:.0f}x)")
    if "--json" in argv:
        from jsonout import write_bench_json

        rows = [
            {"robot": ROBOT, "function": function, "batch": batch,
             "engine": "vectorized", "backend": "numpy", **s}
            for function, s in stats.items()
        ]
        path = write_bench_json(
            "engine", rows,
            {"fd_speedup": fd_speedup, "floor": SPEEDUP_FLOOR},
        )
        print(f"wrote {path}")
    if fd_speedup < SPEEDUP_FLOOR:
        print("FAIL: speedup below floor", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
