"""Structure-compiled engine vs the per-link vectorized engine.

The compiled engine replays a per-robot execution plan
(:mod:`repro.dynamics.plan`): recursions scheduled by tree *depth level*
(independent branches fused into one array op per level), transforms
refreshed in one op per joint kind, and preallocated per-thread
workspaces.  Its advantage grows with branching — a serial chain has one
link per level, a quadruped advances four legs per step — which is
exactly the structure argument the paper's SAPS make in silicon.

This bench times ``"compiled"`` against ``"vectorized"`` (and the
``"loop"`` reference at batch 1, where a per-task Python loop is still
affordable) on a serial robot (iiwa) and two branched robots (hyq,
quadruped_arm) across the batch sizes the serve runtime produces.

Acceptance anchors: compiled must be >= 1.0x vectorized on a branched
robot (CI smoke floor) and the full table shows >= 1.5x on branched
robots at batch 256 for FD (it ships as the serve default).

Runs under pytest (with the usual summary table) or directly for CI
smoke::

    PYTHONPATH=src python benchmarks/bench_plan.py --quick
"""

import sys
import time

import numpy as np

from repro.dynamics import BatchStates, batch_evaluate
from repro.dynamics.functions import RBDFunction
from repro.dynamics.plan import plan_for
from repro.model.library import load_robot

#: (robot, is_branched) — one serial chain, three branched topologies
#: (atlas is the high-DOF stressor the packed sweeps target).
ROBOTS = (("iiwa", False), ("hyq", True), ("quadruped_arm", True),
          ("atlas", True))
BATCHES = (1, 64, 256)
FUNCTIONS = (RBDFunction.FD, RBDFunction.DFD)
#: CI smoke floor: compiled must not lose to vectorized on a branched
#: robot (the serve runtime ships compiled as its default engine).
SMOKE_FLOOR = 1.0
#: Acceptance target at the accelerator's native batch size.
BRANCHED_FD_TARGET = 1.5
#: Per-robot dFD floors at batch 256 (compiled vs vectorized).  dFD used
#: to ride along unasserted, so a high-DOF regression (atlas sat at
#: ~1.0x) was silent; these floors sit ~20-25% under the measured
#: packed-sweep speedups (hyq 1.44x, quadruped_arm 1.04x, atlas 1.08x on
#: the 1-core CI runner) so noise doesn't trip them but a real
#: regression does.
DFD_FLOORS = {"hyq": 1.1, "quadruped_arm": 0.8, "atlas": 0.85}


def _time_engine(model, function, states, u, engine, reps) -> float:
    """Best-of-``reps`` wall seconds for one batched call."""
    batch_evaluate(model, function, states, u, engine=engine)   # warm-up
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        batch_evaluate(model, function, states, u, engine=engine)
        best = min(best, time.perf_counter() - t0)
    return best


def run_plan_bench(robots=ROBOTS, batches=BATCHES,
                   functions=FUNCTIONS) -> list[dict]:
    """Rows of {robot, function, batch, loop_s?, vectorized_s,
    compiled_s, speedup} (speedup = vectorized / compiled)."""
    rows = []
    for robot, branched in robots:
        model = load_robot(robot)
        for batch in batches:
            states = BatchStates.random(model, batch, seed=0)
            u = np.random.default_rng(1).normal(size=(batch, model.nv))
            for function in functions:
                row = {
                    "robot": robot,
                    "branched": branched,
                    "function": function,
                    "batch": batch,
                }
                if batch == 1:
                    # The per-task loop reference is only affordable as a
                    # singleton; at 256 tasks it would dominate the bench.
                    row["loop_s"] = _time_engine(
                        model, function, states, u, "loop", reps=3
                    )
                row["vectorized_s"] = _time_engine(
                    model, function, states, u, "vectorized", reps=5
                )
                row["compiled_s"] = _time_engine(
                    model, function, states, u, "compiled", reps=5
                )
                row["speedup"] = row["vectorized_s"] / row["compiled_s"]
                rows.append(row)
    return rows


def _plan_table(rows):
    from repro.reporting import Table

    table = Table(
        "plan: compiled vs vectorized (speedup = vectorized / compiled)",
        ["robot", "function", "batch", "loop (ms)", "vectorized (ms)",
         "compiled (ms)", "speedup"],
    )
    for row in rows:
        table.add_row(
            row["robot"], row["function"].value, row["batch"],
            "-" if "loop_s" not in row else row["loop_s"] * 1e3,
            row["vectorized_s"] * 1e3, row["compiled_s"] * 1e3,
            row["speedup"],
        )
    return table


def _schedule_lines() -> str:
    lines = ["== compiled level schedules =="]
    for robot, _ in ROBOTS:
        info = plan_for(load_robot(robot)).describe()
        lines.append(
            f"{robot}: {info['links']} links -> {info['levels']} levels, "
            f"widths {info['level_widths']} ({info['branches']} branches)"
        )
    return "\n".join(lines)


def _branched_speedups(rows, batch, function):
    return {
        row["robot"]: row["speedup"]
        for row in rows
        if row["branched"] and row["batch"] == batch
        and row["function"] is function
    }


def _dfd_regressions(rows) -> list[str]:
    """Per-robot dFD-at-256 floor violations, formatted for the report."""
    dfd256 = _branched_speedups(rows, 256, RBDFunction.DFD)
    return [
        f"{robot}: dFD {dfd256[robot]:.2f}x < floor {floor:.2f}x"
        for robot, floor in DFD_FLOORS.items()
        if robot in dfd256 and dfd256[robot] < floor
    ]


def test_compiled_engine_speedup(once):
    """Compiled >= vectorized on branched robots; >= 1.5x on FD at 256;
    per-robot dFD floors hold (high-DOF robots regress loudly now)."""
    from conftest import record_table

    def _run():
        rows = run_plan_bench()
        record_table(_plan_table(rows))
        record_table(_schedule_lines())
        fd256 = _branched_speedups(rows, 256, RBDFunction.FD)
        dfd256 = _branched_speedups(rows, 256, RBDFunction.DFD)
        record_table(
            "== compiled-engine speedup (branched, batch 256) ==\n"
            + "\n".join(
                f"{robot}: FD {s:.2f}x (floor {SMOKE_FLOOR:.1f}x), dFD "
                f"{dfd256.get(robot, float('nan')):.2f}x (floor "
                f"{DFD_FLOORS.get(robot, 0.0):.2f}x)"
                for robot, s in fd256.items()
            )
        )
        for robot, speedup in fd256.items():
            assert speedup >= SMOKE_FLOOR, (robot, speedup)
        assert max(fd256.values()) >= BRANCHED_FD_TARGET
        assert not _dfd_regressions(rows), _dfd_regressions(rows)

    once(_run)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    robots = (("iiwa", False), ("quadruped_arm", True)) if quick else ROBOTS
    batches = (64,) if quick else BATCHES
    functions = (RBDFunction.FD,) if quick else FUNCTIONS
    rows = run_plan_bench(robots, batches, functions)
    print(f"bench_plan: {'quick' if quick else 'full'} mode")
    print(_plan_table(rows).render())
    print()
    print(_schedule_lines())
    branched = [r for r in rows if r["branched"]
                and r["function"] is RBDFunction.FD]
    worst = min(r["speedup"] for r in branched)
    print(f"\ncompiled vs vectorized on branched FD: worst {worst:.2f}x "
          f"(floor {SMOKE_FLOOR:.1f}x)")
    # Per-robot dFD floors only apply when the sweep covered dFD at 256
    # (full mode); quick mode has no dFD rows to assert on.
    dfd_regressions = _dfd_regressions(rows)
    for line in dfd_regressions:
        print(f"dFD regression: {line}", file=sys.stderr)
    if "--json" in argv:
        from jsonout import write_bench_json

        from repro import obs

        # One extra profiled pass per (robot, function) at the largest
        # batch — after the timing loops, which ran with hooks disabled —
        # so the JSON carries the per-kernel breakdown alongside the
        # end-to-end numbers.
        profiler = obs.KernelProfiler(per_level=True)
        tracer = obs.Tracer()
        with obs.profiled(profiler=profiler, tracer=tracer):
            for robot, _ in robots:
                model = load_robot(robot)
                batch = max(batches)
                states = BatchStates.random(model, batch, seed=0)
                u = np.random.default_rng(1).normal(size=(batch, model.nv))
                for function in functions:
                    batch_evaluate(model, function, states, u,
                                   engine="compiled")
        json_rows = [
            {**row, "engine": "compiled", "backend": "numpy"}
            for row in rows
        ]
        path = write_bench_json(
            "plan", json_rows,
            {"worst_branched_fd_speedup": worst, "floor": SMOKE_FLOOR,
             "target": BRANCHED_FD_TARGET,
             "dfd_floors": DFD_FLOORS,
             "dfd_speedups_256": {
                 robot: s for robot, s in
                 _branched_speedups(rows, 256, RBDFunction.DFD).items()
             },
             "kernel_breakdown": profiler.snapshot(),
             "trace_summary": tracer.summary()},
        )
        print(f"wrote {path}")
    if worst < SMOKE_FLOOR:
        print("FAIL: compiled engine lost to vectorized on a branched robot",
              file=sys.stderr)
        return 1
    if dfd_regressions:
        print("FAIL: per-robot dFD floor violated", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
