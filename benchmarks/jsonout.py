"""Machine-readable benchmark output: ``BENCH_<name>.json`` emitters.

Every ``benchmarks/bench_*.py`` accepts ``--json``; the bench then
writes its result rows — robot, function, batch, engine, backend,
timings, speedups — to ``BENCH_<name>.json`` next to the working
directory (override the directory with ``REPRO_BENCH_DIR``).  CI uploads
the files as build artifacts, so the perf trajectory of every PR is a
downloadable time series instead of a table buried in a log.

The schema is deliberately flat::

    {
      "bench": "process",
      "host": {"cores": 4, "python": "3.11.7", "numpy": "2.4.6"},
      "rows": [{"robot": "hyq", "function": "FD", ...}, ...],
      "summary": {...}            # bench-specific headline numbers
    }

Enum values (``RBDFunction``) are serialized by ``.value``; numpy
scalars by ``float``/``int``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from enum import Enum
from pathlib import Path


def _jsonable(value):
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()  # numpy scalar
        except Exception:
            pass
    return value


def host_info() -> dict:
    import numpy

    return {
        "cores": os.cpu_count() or 1,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": sys.platform,
    }


def write_bench_json(name: str, rows: list[dict],
                     summary: dict | None = None) -> Path:
    """Write ``BENCH_<name>.json`` and return its path."""
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    payload = {
        "bench": name,
        "host": host_info(),
        "rows": _jsonable(rows),
        "summary": _jsonable(summary or {}),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
