"""The async serving plane's headline bench: streaming, tenancy, scale.

Four sections, each pinned to an acceptance criterion:

* **streaming** — first-window latency of a windowed rollout vs full
  delivery of the same horizon.  At horizon >= 64 the first window must
  land >= 2x sooner than the whole trajectory: that gap is the whole
  point of streaming for closed-loop control.
* **isolation** — a priority (interactive) tenant's p95 with the pool
  to itself vs under contention from rate-limited aggressor tenants
  *offering* 2x the pool's measured capacity (their token buckets clip
  them to a fraction of it).  Admission control earns its keep iff the
  priority p95 degrades <= 20% (+1 ms jitter epsilon for 1-core CI).
* **autoscale** — a bursty load against a 1-shard pool with the
  autoscaler armed must grow the pool during the burst AND shrink it
  after, with zero failed requests across the scaling events.
* **availability** — the fleet simulation: ~1k concurrent coroutine
  clients (Poisson telemetry + closed-loop MPC streams) with 5% of
  shard executions faulting; availability must stay >= 99%.

Runs under pytest (table summary) or directly for CI smoke::

    PYTHONPATH=src python benchmarks/bench_async.py --quick --json
"""

import asyncio
import statistics
import sys
import time

import numpy as np

from repro.aserve import AsyncGateway, TenantPolicy, run_async_load
from repro.dynamics.functions import RBDFunction
from repro.serve import BatchPolicy, DynamicsService

ROBOT = "iiwa"
NV = 7
#: Streaming acceptance: first window >= this factor sooner than full
#: delivery, at this horizon.
STREAM_HORIZON = 64
STREAM_WINDOW = 8
STREAM_SPEEDUP_FLOOR = 2.0
#: Isolation acceptance: contended p95 <= factor * baseline + epsilon.
#: The epsilon absorbs event-loop timer jitter and one interpreter
#: scheduling quantum on 1-core CI runners.
ISOLATION_FACTOR = 1.2
ISOLATION_EPSILON_S = 3e-3
ISOLATION_HORIZON = 32
#: Availability acceptance at the anchor fault rate.
FAULT_RATE = 0.05
AVAILABILITY_FLOOR = 0.99
SEED = 7


# ----------------------------------------------------------------------
# Section 1: streaming first-window latency vs full delivery
# ----------------------------------------------------------------------

def run_streaming_bench(horizon: int = STREAM_HORIZON,
                        window: int = STREAM_WINDOW,
                        repeats: int = 5) -> dict:
    """Median first-window and full-delivery latencies, one service."""
    svc = DynamicsService(n_shards=2, warm_robots=[ROBOT])
    gw = AsyncGateway(svc)
    q = np.zeros(NV)
    controls = np.zeros((horizon, NV))

    async def run() -> tuple[list[float], list[float]]:
        # Warm the rollout plan so neither arm pays the build.
        await gw.submit_rollout(ROBOT, q, q, controls, 1e-3, urgent=True)
        first_s, full_s = [], []
        for _ in range(repeats):
            t0 = time.perf_counter()
            stream = await gw.stream_rollout(
                ROBOT, q, q, controls, 1e-3, window=window, urgent=True,
            )
            got_first = None
            async for w in stream:
                if got_first is None:
                    got_first = time.perf_counter() - t0
            await stream.result()
            first_s.append(got_first)
            t0 = time.perf_counter()
            await gw.submit_rollout(ROBOT, q, q, controls, 1e-3,
                                    urgent=True)
            full_s.append(time.perf_counter() - t0)
        return first_s, full_s

    try:
        first_s, full_s = asyncio.run(run())
    finally:
        svc.close()
    first = statistics.median(first_s)
    full = statistics.median(full_s)
    return {
        "horizon": horizon,
        "window": window,
        "repeats": repeats,
        "first_window_ms": first * 1e3,
        "full_delivery_ms": full * 1e3,
        "speedup": full / first if first > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# Section 2: tenant isolation under overload
# ----------------------------------------------------------------------

async def _priority_run(gw: AsyncGateway, n: int, gap_s: float,
                        horizon: int) -> list[float]:
    q = np.zeros(NV)
    controls = np.zeros((horizon, NV))
    latencies = []
    for _ in range(n):
        t0 = time.perf_counter()
        await gw.submit_rollout(ROBOT, q, q, controls, 1e-3,
                                tenant="priority")
        latencies.append(time.perf_counter() - t0)
        await asyncio.sleep(gap_s)
    return latencies


async def _aggressor_run(gw: AsyncGateway, tenant: str, horizon: int,
                         gap_s: float, counts: dict,
                         stop: asyncio.Event) -> None:
    """Fire-and-forget rollout submits at the offered rate until ``stop``.

    Submissions are spawned as tasks, not awaited inline — the offered
    rate must not collapse to the service latency, or there is no
    overload to clip.  Rollouts (cost = horizon) saturate the bucket in
    few requests, so the overload is in admitted *work*, not call
    count.
    """
    from repro.aserve import ClientOverloaded, RateLimitedError

    q = np.zeros(NV)
    controls = np.zeros((horizon, NV))

    async def one() -> None:
        try:
            await gw.submit_rollout(ROBOT, q, q, controls, 1e-3,
                                    tenant=tenant)
            counts["admitted"] += 1
        except (RateLimitedError, ClientOverloaded):
            counts["clipped"] += 1
        except Exception:
            counts["failed"] += 1

    tasks = []
    while not stop.is_set():
        tasks.append(asyncio.ensure_future(one()))
        await asyncio.sleep(gap_s)
    await asyncio.gather(*tasks)


def run_isolation_bench(n_priority: int = 160, n_aggressors: int = 2,
                        overload_factor: float = 2.0,
                        passes: int = 4) -> dict:
    """Priority-tenant p95 alone vs under rate-limited 2x overload.

    Baseline and contended samples interleave across ``passes`` so
    slow machine-load drift hits both arms equally.

    The shard pool is in-process threads, so *any* admitted aggressor
    execution steals GIL time from the priority tenant's rollout — the
    simulation's stand-in for a saturated accelerator.  Isolation is
    therefore a pure admission-policy outcome: the batch tier's budget
    (~0.5% of measured capacity) keeps admitted aggressor duty cycle
    below the p95 sample fraction, exactly how an operator would
    provision a best-effort tier against a latency SLO.
    """
    svc = DynamicsService(
        policy=BatchPolicy(max_wait_s=1e-3, max_pending=100_000),
        n_shards=2, shard_policy="least_loaded", warm_robots=[ROBOT],
    )
    gw = AsyncGateway(svc)
    gw.set_policy("priority", TenantPolicy(priority="interactive",
                                           rate_rps=100_000, burst=100_000))
    q = np.zeros(NV)
    gap_priority = 0.004

    async def calibrate() -> float:
        """Measured pool capacity, FD requests/s (a saturating burst)."""
        n = 64
        t0 = time.perf_counter()
        await asyncio.gather(*[
            gw.submit(ROBOT, RBDFunction.FD, q, q, q) for _ in range(n)
        ])
        return n / (time.perf_counter() - t0)

    try:
        capacity_rps = asyncio.run(calibrate())
        # Aggressors collectively offer overload_factor * capacity in
        # cost units (a rollout costs its horizon); their buckets clip
        # pool-wide aggressor admission to ~0.5% of capacity — a
        # best-effort batch tier provisioned against the priority
        # tenant's latency SLO.
        agg_horizon = 32
        offered_each = overload_factor * capacity_rps / n_aggressors
        limit_each = 0.005 * capacity_rps / n_aggressors
        for i in range(n_aggressors):
            gw.set_policy(f"aggressor-{i}", TenantPolicy(
                rate_rps=max(limit_each, 1.0),
                burst=agg_horizon + 1.0,
                priority="batch",
            ))
        gap_aggressor = max(agg_horizon / offered_each, 1e-3)

        counts = {"admitted": 0, "clipped": 0, "failed": 0}

        async def contended_run(n: int) -> list[float]:
            stop = asyncio.Event()
            aggressors = [
                asyncio.ensure_future(_aggressor_run(
                    gw, f"aggressor-{i}", agg_horizon, gap_aggressor,
                    counts, stop))
                for i in range(n_aggressors)
            ]
            try:
                return await _priority_run(
                    gw, n, gap_priority, ISOLATION_HORIZON)
            finally:
                stop.set()
                await asyncio.gather(*aggressors)

        # Warm the rollout plan so no measured sample pays the build.
        asyncio.run(_priority_run(gw, 1, 0.0, ISOLATION_HORIZON))
        per_pass = max(n_priority // passes, 10)
        baseline: list[float] = []
        contended: list[float] = []
        # A short GIL switch interval keeps an overlapping aggressor
        # batch from pinning the interpreter for whole 5 ms quanta.
        switch = sys.getswitchinterval()
        sys.setswitchinterval(1e-3)
        try:
            for _ in range(passes):
                baseline += asyncio.run(_priority_run(
                    gw, per_pass, gap_priority, ISOLATION_HORIZON))
                contended += asyncio.run(contended_run(per_pass))
        finally:
            sys.setswitchinterval(switch)
    finally:
        svc.close()

    p95_base = float(np.percentile(baseline, 95))
    p95_cont = float(np.percentile(contended, 95))
    return {
        "capacity_rps": capacity_rps,
        "overload_factor": overload_factor,
        "aggressors": n_aggressors,
        "aggressor_admitted": counts["admitted"],
        "aggressor_clipped": counts["clipped"],
        "aggressor_failed": counts["failed"],
        "p95_baseline_ms": p95_base * 1e3,
        "p95_contended_ms": p95_cont * 1e3,
        "degradation": p95_cont / p95_base if p95_base > 0 else 1.0,
        "bound_ms": (ISOLATION_FACTOR * p95_base + ISOLATION_EPSILON_S)
        * 1e3,
        "within_bound": p95_cont
        <= ISOLATION_FACTOR * p95_base + ISOLATION_EPSILON_S,
    }


# ----------------------------------------------------------------------
# Sections 3 + 4: autoscaling burst, fleet availability
# ----------------------------------------------------------------------

def run_autoscale_bench(quick: bool = False) -> dict:
    """Bursty load against a 1-shard pool; must grow AND shrink."""
    report = run_async_load(
        n_clients=40 if quick else 80,
        mpc_fraction=0.25,
        requests_per_client=4 if quick else 8,
        plans_per_client=2,
        horizon=16, window=4,
        rate_rps=40.0,
        fault_rate=0.0,
        n_shards=1, autoscale=True, min_shards=1, max_shards=4,
        seed=SEED,
    )
    failed = report["poisson"]["failed"] + report["mpc"]["failed"]
    return {
        "clients": report["n_clients"],
        "scale_ups": report["scale_ups"],
        "scale_downs": report["scale_downs"],
        "failed": failed,
        "availability": report["availability"],
        "wall_s": report["wall_s"],
        "utilization": (report["autoscaler"] or {}).get("utilization", 0.0),
    }


def run_availability_bench(quick: bool = False) -> dict:
    """~1k-client Poisson + MPC mix at the anchor fault rate."""
    report = run_async_load(
        n_clients=1000,
        mpc_fraction=0.2,
        requests_per_client=1 if quick else 3,
        plans_per_client=1 if quick else 2,
        horizon=16, window=4,
        rate_rps=20.0,
        fault_rate=FAULT_RATE,
        n_shards=3,
        seed=SEED,
    )
    return {
        "clients": report["n_clients"],
        "mpc_clients": report["mpc_clients"],
        "fault_rate": FAULT_RATE,
        "availability": report["availability"],
        "poisson_ok": report["poisson"]["ok"],
        "poisson_failed": report["poisson"]["failed"],
        "mpc_ok": report["mpc"]["ok"],
        "mpc_failed": report["mpc"]["failed"],
        "mpc_cancelled": report["mpc"]["cancelled"],
        "first_window_p95_ms": report["mpc"]["first_window_p95_ms"],
        "retries": report["retries"],
        "breaker_opens": report["breaker_opens"],
        "wall_s": report["wall_s"],
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

def run_all(quick: bool = False) -> dict:
    return {
        "streaming": run_streaming_bench(
            repeats=3 if quick else 5),
        "isolation": run_isolation_bench(
            n_priority=80 if quick else 160),
        "autoscale": run_autoscale_bench(quick),
        "availability": run_availability_bench(quick),
    }


def check(rows: dict) -> list[str]:
    """Acceptance gates; returns failure descriptions (empty = pass)."""
    failures = []
    s = rows["streaming"]
    if s["speedup"] < STREAM_SPEEDUP_FLOOR:
        failures.append(
            f"streaming speedup {s['speedup']:.2f}x < "
            f"{STREAM_SPEEDUP_FLOOR}x at horizon {s['horizon']}"
        )
    i = rows["isolation"]
    if not i["within_bound"]:
        failures.append(
            f"priority p95 degraded {i['degradation']:.2f}x "
            f"(bound {ISOLATION_FACTOR}x + {ISOLATION_EPSILON_S * 1e3}ms)"
        )
    a = rows["autoscale"]
    if a["scale_ups"] < 1 or a["scale_downs"] < 1:
        failures.append(
            f"autoscaler did not both grow and shrink "
            f"(ups={a['scale_ups']}, downs={a['scale_downs']})"
        )
    if a["failed"] > 0:
        failures.append(f"{a['failed']} requests failed during scaling")
    v = rows["availability"]
    if v["availability"] < AVAILABILITY_FLOOR:
        failures.append(
            f"availability {v['availability']:.4f} < {AVAILABILITY_FLOOR} "
            f"at {v['fault_rate']:.0%} faults"
        )
    return failures


def _async_table(rows: dict):
    from repro.reporting import Table

    table = Table(
        "async serving: streaming / isolation / autoscale / availability",
        ["section", "metric", "value", "gate"],
    )
    s = rows["streaming"]
    table.add_row("streaming", f"first window @T={s['horizon']}",
                  f"{s['first_window_ms']:.1f} ms vs "
                  f"{s['full_delivery_ms']:.1f} ms full",
                  f"{s['speedup']:.1f}x (floor {STREAM_SPEEDUP_FLOOR}x)")
    i = rows["isolation"]
    table.add_row("isolation", "priority p95 under 2x overload",
                  f"{i['p95_baseline_ms']:.2f} -> "
                  f"{i['p95_contended_ms']:.2f} ms",
                  f"{i['degradation']:.2f}x (bound {ISOLATION_FACTOR}x)")
    a = rows["autoscale"]
    table.add_row("autoscale", "pool grow/shrink, failures",
                  f"+{a['scale_ups']}/-{a['scale_downs']} shards, "
                  f"{a['failed']} failed",
                  ">=1 each, 0 failed")
    v = rows["availability"]
    table.add_row("availability", f"{v['clients']} clients @ "
                  f"{v['fault_rate']:.0%} faults",
                  f"{v['availability']:.4f} "
                  f"({v['retries']} retries)",
                  f">= {AVAILABILITY_FLOOR}")
    return table


def test_async_serving(once):
    """Streaming 2x, isolation <= 1.2x, scale up+down, 99% availability."""
    from conftest import record_table

    def _run():
        rows = run_all(quick=True)
        record_table(_async_table(rows))
        failures = check(rows)
        assert not failures, "; ".join(failures)

    once(_run)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    rows = run_all(quick=quick)
    s = rows["streaming"]
    print(f"bench_async ({'quick' if quick else 'full'}):")
    print(f"  streaming:    first window {s['first_window_ms']:.1f} ms vs "
          f"full {s['full_delivery_ms']:.1f} ms at T={s['horizon']} "
          f"-> {s['speedup']:.1f}x")
    i = rows["isolation"]
    print(f"  isolation:    priority p95 {i['p95_baseline_ms']:.2f} -> "
          f"{i['p95_contended_ms']:.2f} ms under 2x overload "
          f"({i['aggressor_clipped']} aggressor requests clipped) "
          f"-> {i['degradation']:.2f}x")
    a = rows["autoscale"]
    print(f"  autoscale:    +{a['scale_ups']}/-{a['scale_downs']} shards, "
          f"{a['failed']} failed, availability {a['availability']:.4f}")
    v = rows["availability"]
    print(f"  availability: {v['availability']:.4f} with {v['clients']} "
          f"clients at {v['fault_rate']:.0%} faults "
          f"({v['retries']} retries, {v['breaker_opens']} breaker opens, "
          f"first-window p95 {v['first_window_p95_ms']:.1f} ms)")
    if "--json" in argv:
        from jsonout import write_bench_json

        path = write_bench_json(
            "async",
            [dict(section=k, **v) for k, v in rows.items()],
            {"stream_speedup": s["speedup"],
             "stream_speedup_floor": STREAM_SPEEDUP_FLOOR,
             "isolation_degradation": i["degradation"],
             "isolation_factor": ISOLATION_FACTOR,
             "scale_ups": a["scale_ups"],
             "scale_downs": a["scale_downs"],
             "availability": v["availability"],
             "availability_floor": AVAILABILITY_FLOOR,
             "seed": SEED},
        )
        print(f"wrote {path}")
    failures = check(rows)
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
