"""Numerics ablation: fixed-point width and Taylor order (Section IV-B2,
V-B2).

The paper picks a fixed-point datapath with the float-trick reciprocal and
a short Taylor trigonometric expansion; this bench quantifies the accuracy
each choice buys across full dynamics evaluations, justifying the shipped
format.
"""

import numpy as np
import pytest

from conftest import record_table
from repro.core import DaduRBD, PAPER_CONFIG, TaskRequest
from repro.core.config import NumericsConfig
from repro.dynamics import inverse_dynamics, mass_matrix_inverse
from repro.dynamics.functions import RBDFunction
from repro.model.library import iiwa
from repro.reporting import Table


def _worst_error(acc, robot, n_samples=10, seed=0):
    rng = np.random.default_rng(seed)
    worst_id, worst_minv = 0.0, 0.0
    for _ in range(n_samples):
        q, qd = robot.random_state(rng)
        qdd = rng.normal(size=robot.nv)
        got = acc.compute(TaskRequest(RBDFunction.ID, q, qd, qdd))
        worst_id = max(worst_id, float(np.abs(
            got - inverse_dynamics(robot, q, qd, qdd)).max()))
        got = acc.compute(TaskRequest(RBDFunction.MINV, q))
        worst_minv = max(worst_minv, float(np.abs(
            got - mass_matrix_inverse(robot, q)).max()))
    return worst_id, worst_minv


def test_fixed_point_width_sweep(once):
    def _report():
        robot = iiwa()
        table = Table(
            "Numerics: worst-case error vs fixed-point fraction bits (iiwa)",
            ["fraction bits", "|ID err|", "|Minv err|"],
        )
        errors = []
        for bits in (12, 16, 20, 24):
            config = PAPER_CONFIG.with_(
                numerics=NumericsConfig(fraction_bits=bits)
            )
            acc = DaduRBD(robot, config)
            err_id, err_minv = _worst_error(acc, robot)
            errors.append(err_id)
            table.add_row(bits, err_id, err_minv)
        table.add_note("shipped format: Q16.20 (paper section IV-B2)")
        record_table(table)

        # Accuracy improves with width; the shipped 20-bit point gives
        # torque errors below a milli-Newton-metre.
        assert errors == sorted(errors, reverse=True)
        assert errors[2] < 1e-3

    once(_report)


def test_taylor_order_sweep(once):
    def _report():
        from repro.core.trig import max_error

        table = Table(
            "Numerics: trig module worst error vs Taylor order",
            ["order", "max |error|", "below fixed-point LSB (2^-20)?"],
        )
        for order in (3, 5, 7, 9, 11):
            err = max_error(order)
            table.add_row(order, err, "yes" if err < 2**-20 else "no")
        table.add_note("shipped order: 9")
        record_table(table)
        assert max_error(9) < 2**-20
        assert max_error(7) > 2**-20

    once(_report)


@pytest.mark.parametrize("bits", [16, 24])
def test_numerics_benchmark(benchmark, bits):
    """pytest-benchmark target: one hardware-numerics evaluation."""
    robot = iiwa()
    acc = DaduRBD(robot, PAPER_CONFIG.with_(
        numerics=NumericsConfig(fraction_bits=bits)
    ))
    rng = np.random.default_rng(1)
    q, qd = robot.random_state(rng)
    qdd = rng.normal(size=robot.nv)
    request = TaskRequest(RBDFunction.ID, q, qd, qdd)
    benchmark(acc.compute, request)
