"""Batched rollout throughput vs per-task stepping.

The rollout subsystem (:mod:`repro.rollout`) simulates whole ``(n, T)``
trajectory slabs through the batched engines; this bench times it
against the serial per-task stepping loop it replaced, on the two
paper-shaped workloads (free RK4 on the iiwa arm; contact-constrained
semi-implicit on HyQ), at horizons 16 and 64.

Acceptance anchor: >= 5x batched-over-per-task at batch 256 on at least
one workload (measured ~40-200x on the dev host); the CI smoke floor is
1x.

Runs under pytest (summary table) or directly for CI smoke::

    PYTHONPATH=src python benchmarks/bench_rollout.py --quick --json
"""

import sys

from repro.rollout.bench import (
    SPEEDUP_FLOOR,
    SPEEDUP_TARGET,
    format_rollout_table,
    run_rollout_bench,
)

BATCH = 256
HORIZONS = (16, 64)
WORKLOADS = ("serial", "quadruped_contact")


def _run(batch: int, horizons, baseline_tasks: int) -> list[dict]:
    return [
        run_rollout_bench(workload, batch=batch, horizon=horizon,
                          baseline_tasks=baseline_tasks)
        for workload in WORKLOADS
        for horizon in horizons
    ]


def test_rollout_speedup(once):
    """Batched rollouts >= 1x per-task stepping (target 5x) at batch 256."""
    from conftest import record_table

    def _check():
        rows = _run(BATCH, (16,), baseline_tasks=4)
        record_table(format_rollout_table(rows))
        best = max(row["speedup"] for row in rows)
        record_table(
            f"== rollout speedup (batch {BATCH}) ==\n"
            f"best: {best:.1f}x (target {SPEEDUP_TARGET:.0f}x, "
            f"floor {SPEEDUP_FLOOR:.0f}x)"
        )
        assert best >= SPEEDUP_FLOOR
        for row in rows:
            assert row["speedup"] >= SPEEDUP_FLOOR

    once(_check)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    batch = 32 if quick else BATCH
    horizons = (8,) if quick else HORIZONS
    rows = _run(batch, horizons, baseline_tasks=4 if quick else 8)
    print(f"bench_rollout: batch {batch}, horizons {horizons}")
    print(format_rollout_table(rows).render())
    best = max(row["speedup"] for row in rows)
    floor = SPEEDUP_FLOOR if quick else SPEEDUP_TARGET
    print(f"\nbest batched-rollout speedup: {best:.1f}x "
          f"(target {SPEEDUP_TARGET:.0f}x at batch 256, floor {floor:.0f}x)")
    if "--json" in argv:
        import numpy as np

        from jsonout import write_bench_json

        from repro import obs
        from repro.model.library import load_robot
        from repro.rollout import RolloutEngine

        # One extra profiled slab (after the timing loops, which ran
        # with hooks disabled) so the JSON carries the per-step kernel
        # breakdown alongside the throughput numbers.
        model = load_robot("iiwa")
        rng = np.random.default_rng(0)
        profiler = obs.KernelProfiler()
        tracer = obs.Tracer()
        with obs.profiled(profiler=profiler, tracer=tracer):
            RolloutEngine("semi_implicit", engine="compiled").rollout(
                model,
                rng.normal(size=(batch, model.nv)) * 0.1,
                np.zeros((batch, model.nv)),
                rng.normal(size=(batch, horizons[0], model.nv)) * 0.05,
                dt=1e-3,
            )
        path = write_bench_json(
            "rollout", rows,
            {"best_speedup": best, "target": SPEEDUP_TARGET,
             "floor": floor, "batch": batch,
             "kernel_breakdown": profiler.snapshot(),
             "trace_summary": tracer.summary()},
        )
        print(f"wrote {path}")
    if best < floor:
        print("FAIL: speedup below floor", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
