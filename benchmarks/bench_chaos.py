"""Availability under injected faults: the serve runtime's chaos bench.

The resilience stack (retries with backoff, circuit breakers with
background probes, poison isolation, deadline shedding) earns its keep
only if the service stays available while shards actually fail.  This
bench drives an open-loop load through :class:`DynamicsService` while
:mod:`repro.faults` injects failures at the ``shard.execute`` boundary
at a swept rate, and measures the fraction of requests that still
resolve successfully.

Acceptance anchor: with 5% of batch executions faulting (deterministic
seed), request success rate must stay >= 99% and every future must be
resolved — no request may hang or be silently dropped.

Runs under pytest (with the usual table summary) or directly for CI
smoke::

    PYTHONPATH=src python benchmarks/bench_chaos.py --quick --json
"""

import sys
import time

import numpy as np

from repro.dynamics.functions import RBDFunction
from repro.faults import FaultSpec, injected
from repro.serve import BatchPolicy, DynamicsService, RetryPolicy

ROBOT = "iiwa"
FUNCTION = RBDFunction.FD
REQUESTS = 192
#: Swept per-execution fault probabilities at the shard boundary.
FAULT_RATES = (0.0, 0.05, 0.10)
#: The acceptance pair: at this injected rate, at least this fraction
#: of requests must still succeed.
ANCHOR_RATE = 0.05
SUCCESS_FLOOR = 0.99
#: Seed chosen so the anchor-rate decision stream fires early (first
#: fault on the 3rd shard execution) — the bench provably exercises the
#: retry machinery instead of sampling a lucky all-clear run.
SEED = 41


def run_chaos_load(requests: int = REQUESTS, fault_rate: float = 0.0,
                   kind: str = "exception", latency_s: float = 0.0,
                   seed: int = SEED) -> dict:
    """Push ``requests`` through a 3-shard service under injected faults.

    Returns a flat stats row: success/failure/unresolved counts, the
    resilience counters (retries, breaker opens, isolations, probes)
    and wall time.  ``fault_rate == 0`` runs the identical load with the
    injection framework fully disarmed — the availability baseline.
    """
    # Small batches on purpose: more shard executions per run means more
    # injection decisions, so the fault machinery is actually exercised.
    policy = BatchPolicy(max_batch=8, max_wait_s=1e-3, max_pending=4096)
    retry = RetryPolicy(max_attempts=4, backoff_s=5e-4)
    nv = 7
    q = np.zeros(nv)
    spec = FaultSpec("shard.execute", rate=fault_rate, kind=kind,
                     latency_s=latency_s)
    svc = DynamicsService(policy, n_shards=3, shard_policy="least_loaded",
                          retry=retry, breaker_threshold=2,
                          breaker_cooldown_s=0.02,
                          warm_robots=[ROBOT])
    t0 = time.perf_counter()
    try:
        if fault_rate > 0:
            with injected(spec, seed=seed) as inj:
                futures = [svc.submit(ROBOT, FUNCTION, q, q, q)
                           for _ in range(requests)]
                svc.flush()
                done = [_settle(f) for f in futures]
                fired = inj.stats()["shard.execute"]["fired"]
        else:
            futures = [svc.submit(ROBOT, FUNCTION, q, q, q)
                       for _ in range(requests)]
            svc.flush()
            done = [_settle(f) for f in futures]
            fired = 0
        stats = svc.stats()
    finally:
        svc.close()
    wall_s = time.perf_counter() - t0
    unresolved = sum(1 for f in futures if not f.done())
    successes = sum(done)
    return {
        "requests": requests,
        "fault_rate": fault_rate,
        "kind": kind,
        "faults_fired": fired,
        "successes": successes,
        "failures": requests - successes,
        "success_rate": successes / requests,
        "unresolved": unresolved,
        "retries": stats["retries"],
        "breaker_opens": stats["breaker_opens"],
        "poison_isolations": stats["poison_isolations"],
        "probes": stats["probes"],
        "shed": stats["shed"],
        "wall_s": wall_s,
    }


def _settle(future) -> bool:
    """Resolve one future; True iff it carries a result."""
    try:
        future.result(timeout=60.0)
        return True
    except Exception:
        return False


def sweep(requests: int = REQUESTS, rates=FAULT_RATES) -> list[dict]:
    """The headline sweep: exception faults at each rate, plus one
    latency-spike row at the anchor rate."""
    rows = [run_chaos_load(requests, rate) for rate in rates]
    rows.append(run_chaos_load(requests, ANCHOR_RATE, kind="latency",
                               latency_s=2e-3))
    return rows


def anchor_row(rows: list[dict]) -> dict:
    """The acceptance row: exception faults at ANCHOR_RATE."""
    return next(r for r in rows
                if r["fault_rate"] == ANCHOR_RATE
                and r["kind"] == "exception")


def _chaos_table(rows: list[dict]):
    from repro.reporting import Table

    table = Table(
        f"chaos: {ROBOT} {FUNCTION.value} availability under injected "
        f"shard faults (3 shards, retry+breaker armed)",
        ["rate", "kind", "fired", "ok", "fail", "unresolved",
         "success", "retries", "breaker opens", "wall (s)"],
    )
    for r in rows:
        table.add_row(
            r["fault_rate"], r["kind"], r["faults_fired"], r["successes"],
            r["failures"], r["unresolved"], f"{r['success_rate']:.4f}",
            r["retries"], r["breaker_opens"], f"{r['wall_s']:.2f}",
        )
    return table


def test_chaos_availability(once):
    """>= 99% success, zero unresolved futures, under 5% shard faults."""
    from conftest import record_table

    def _run():
        rows = sweep()
        record_table(_chaos_table(rows))
        anchor = anchor_row(rows)
        record_table(
            f"== chaos availability (iiwa FD, {ANCHOR_RATE:.0%} faults) ==\n"
            f"success rate {anchor['success_rate']:.4f} "
            f"(floor {SUCCESS_FLOOR}), "
            f"{anchor['unresolved']} unresolved futures (must be 0)"
        )
        for r in rows:
            assert r["unresolved"] == 0
        # The unfaulted baseline must be perfectly clean...
        assert rows[0]["success_rate"] == 1.0
        # ...and the armed anchor must clear the availability floor.
        assert anchor["success_rate"] >= SUCCESS_FLOOR
        assert anchor["faults_fired"] > 0
        assert anchor["retries"] > 0

    once(_run)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    requests = 96 if quick else REQUESTS
    rates = (0.0, ANCHOR_RATE) if quick else FAULT_RATES
    rows = sweep(requests, rates)
    print(f"bench_chaos: {ROBOT} {FUNCTION.value}, {requests} requests, "
          f"3 shards, seed {SEED}")
    for r in rows:
        print(f"  rate={r['fault_rate']:<5} kind={r['kind']:<9} "
              f"fired={r['faults_fired']:<3} ok={r['successes']}/{requests} "
              f"unresolved={r['unresolved']} retries={r['retries']} "
              f"breaker_opens={r['breaker_opens']} wall={r['wall_s']:.2f}s")
    anchor = anchor_row(rows)
    print(f"\nsuccess rate at {ANCHOR_RATE:.0%} faults: "
          f"{anchor['success_rate']:.4f} (floor {SUCCESS_FLOOR})")
    if "--json" in argv:
        from jsonout import write_bench_json

        path = write_bench_json(
            "chaos", rows,
            {"anchor_rate": ANCHOR_RATE,
             "anchor_success_rate": anchor["success_rate"],
             "floor": SUCCESS_FLOOR,
             "unresolved_total": sum(r["unresolved"] for r in rows),
             "seed": SEED},
        )
        print(f"wrote {path}")
    failed = []
    if anchor["success_rate"] < SUCCESS_FLOOR:
        failed.append("success rate below floor")
    if any(r["unresolved"] for r in rows):
        failed.append("unresolved futures")
    if failed:
        print("FAIL: " + "; ".join(failed), file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
