"""Jit engine vs compiled plans: Table-I kernels and the fused rollout.

The ``jit`` engine runs the functional (out-of-place) plan kernels
through the backend's trace compiler — on jax every Table-I function is
one fused XLA program, and open-loop rollouts fold ``T`` integrator
steps into a single ``lax.scan`` instead of ``T`` per-step engine calls.
This bench times both against the in-place ``compiled`` engine on a
serial arm (iiwa) and a branched quadruped (hyq), batch 1/64/256, plus
the fused ``(n, T)`` trajectory slab case.

The speedup floor (>= 1.0x fused-over-per-step, target 2x) is enforced
only when a trace-compiling backend (jax) is actually present — the
cpu-jit CI job installs ``jax[cpu]`` and holds the floor; on jax-less
hosts the engine falls back to interpreting the functional kernels on
numpy, which this bench then reports without asserting (interpreted
out-of-place sweeps cannot beat the in-place plans they mirror).

Runs under pytest (summary table) or directly for CI smoke::

    PYTHONPATH=src python benchmarks/bench_jit.py --quick --json
"""

import sys
import time

import numpy as np

from repro.backend import BackendCapabilityError
from repro.dynamics.batch import BatchStates
from repro.dynamics.engine import get_engine
from repro.dynamics.functions import RBDFunction
from repro.dynamics.jit import JitEngine
from repro.model.library import load_robot
from repro.rollout import RolloutEngine

ROBOTS = ("iiwa", "hyq")
BATCHES = (1, 64, 256)
FUNCTIONS = (RBDFunction.FD, RBDFunction.MINV, RBDFunction.DFD)
SPEEDUP_FLOOR = 1.0
SPEEDUP_TARGET = 2.0
ROLLOUT_BATCH = 64
ROLLOUT_HORIZON = 128


def make_jit_engine() -> tuple[JitEngine, bool]:
    """The jit engine and whether it actually trace-compiles.

    Prefers the default (jax) resolution; on jax-less hosts falls back
    to the numpy interpret mode so the bench still runs end to end.
    """
    engine = JitEngine()
    try:
        engine.plan(load_robot("iiwa"))
        return engine, True
    except BackendCapabilityError:
        return JitEngine(backend="numpy"), False


def _time(fn, reps: int) -> float:
    fn()                    # warm: compile + allocate outside the timing
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _call(engine, model, function, st, u):
    if function == RBDFunction.FD:
        return lambda: engine.fd_batch(model, st.q, st.qd, u)
    if function == RBDFunction.MINV:
        return lambda: engine.minv_batch(model, st.q)
    if function == RBDFunction.DFD:
        return lambda: engine.dfd_batch(model, st.q, st.qd, u)
    raise ValueError(function)


def run_kernel_bench(jit_engine, robot: str, function: RBDFunction,
                     batch: int, reps: int) -> dict:
    model = load_robot(robot)
    st = BatchStates.random(model, batch, seed=0)
    u = np.random.default_rng(1).normal(size=(batch, model.nv))
    compiled = get_engine("compiled")
    t_jit = _time(_call(jit_engine, model, function, st, u), reps)
    t_comp = _time(_call(compiled, model, function, st, u), reps)
    return {
        "robot": robot,
        "function": function,
        "batch": batch,
        "jit_ms": t_jit * 1e3,
        "compiled_ms": t_comp * 1e3,
        "speedup": t_comp / t_jit,
    }


def run_rollout_bench(jit_engine, batch: int, horizon: int,
                      reps: int) -> dict:
    """Fused (scanned) rollout vs the per-step compiled rollout loop."""
    model = load_robot("iiwa")
    st = BatchStates.random(model, batch, seed=2)
    us = 0.05 * np.random.default_rng(3).normal(
        size=(batch, horizon, model.nv)
    )
    fused = RolloutEngine("euler", engine=jit_engine)
    stepped = RolloutEngine("euler", engine="compiled")

    t_fused = _time(
        lambda: fused.rollout(model, st.q, st.qd, us, dt=1e-3), reps
    )
    t_step = _time(
        lambda: stepped.rollout(model, st.q, st.qd, us, dt=1e-3), reps
    )
    return {
        "robot": "iiwa",
        "function": "rollout[euler]",
        "batch": batch,
        "horizon": horizon,
        "jit_ms": t_fused * 1e3,
        "compiled_ms": t_step * 1e3,
        "speedup": t_step / t_fused,
    }


def _run(jit_engine, batches, reps: int,
         rollout_shape: tuple[int, int]) -> list[dict]:
    rows = [
        run_kernel_bench(jit_engine, robot, function, batch, reps)
        for robot in ROBOTS
        for function in FUNCTIONS
        for batch in batches
    ]
    rows.append(run_rollout_bench(jit_engine, *rollout_shape, reps))
    return rows


def _format(rows: list[dict]) -> str:
    header = (f"{'robot':10s} {'function':14s} {'batch':>6s} "
              f"{'jit(ms)':>9s} {'compiled(ms)':>13s} {'speedup':>8s}")
    lines = [header, "-" * len(header)]
    for row in rows:
        fn = row["function"]
        fn = fn.value if hasattr(fn, "value") else fn
        lines.append(
            f"{row['robot']:10s} {fn:14s} {row['batch']:6d} "
            f"{row['jit_ms']:9.3f} {row['compiled_ms']:13.3f} "
            f"{row['speedup']:7.2f}x"
        )
    return "\n".join(lines)


def test_jit_bench(once):
    """Fused rollout >= 1x the per-step compiled loop (jax hosts)."""
    from conftest import record_table

    def _check():
        engine, compiling = make_jit_engine()
        rows = _run(engine, (64,), reps=2, rollout_shape=(16, 32))
        record_table(_format(rows))
        fused = rows[-1]["speedup"]
        record_table(
            f"== fused rollout speedup: {fused:.2f}x "
            f"(floor {SPEEDUP_FLOOR:.0f}x, target {SPEEDUP_TARGET:.0f}x, "
            f"backend {engine.backend_name}, "
            f"{'compiled' if compiling else 'interpreted'}) =="
        )
        if compiling:
            assert fused >= SPEEDUP_FLOOR

    once(_check)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    batches = (1, 64) if quick else BATCHES
    reps = 3 if quick else 7
    rollout_shape = (16, 32) if quick else (ROLLOUT_BATCH, ROLLOUT_HORIZON)
    engine, compiling = make_jit_engine()
    mode = "trace-compiled" if compiling else "interpreted (jax absent)"
    print(f"bench_jit: backend {engine.backend_name}, {mode}, "
          f"batches {batches}")
    rows = _run(engine, batches, reps, rollout_shape)
    print(_format(rows))
    fused = rows[-1]["speedup"]
    print(f"\nfused rollout speedup: {fused:.2f}x "
          f"(floor {SPEEDUP_FLOOR:.0f}x, target {SPEEDUP_TARGET:.0f}x; "
          f"enforced only when trace-compiling)")
    if "--json" in argv:
        from jsonout import write_bench_json

        path = write_bench_json(
            "jit", rows,
            {
                "fused_rollout_speedup": fused,
                "floor": SPEEDUP_FLOOR,
                "target": SPEEDUP_TARGET,
                "jit_backend": engine.backend_name,
                "trace_compiled": compiling,
                "floor_enforced": compiling,
                "compile_cache": engine.compile_cache_stats(),
            },
        )
        print(f"wrote {path}")
    if compiling and fused < SPEEDUP_FLOOR:
        print("FAIL: fused rollout below floor", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
