"""Service-level latency/throughput curves for the repro.serve runtime.

The paper measures the accelerator with pre-formed batches (Fig 15); the
serving layer has to *form* them from independent requests.  This bench
sweeps the dynamic batcher's ``max_batch`` knob under a max-pressure
open-loop load and records the resulting latency-vs-throughput curve,
plus the shard-scaling and dispatch-policy effects.

Acceptance anchor: dynamic batching must sustain >= 5x the modeled
service throughput of batch-size-1 dispatch for the iiwa FD workload.

Runs under pytest (with the usual paper-vs-measured table summary) or
directly for CI smoke::

    PYTHONPATH=src python benchmarks/bench_serve.py --quick
"""

import sys

from repro.dynamics.functions import RBDFunction
from repro.serve.bench import run_serve_load

ROBOT = "iiwa"
FUNCTION = RBDFunction.FD
REQUESTS = 256
BATCH_SWEEP = (1, 4, 16, 64)
SPEEDUP_FLOOR = 5.0


def sweep_batch_sizes(requests: int = REQUESTS,
                      batch_sizes=BATCH_SWEEP) -> dict[int, dict]:
    """Run the open-loop load once per max_batch; stats keyed by size."""
    out = {}
    for max_batch in batch_sizes:
        out[max_batch] = run_serve_load(
            ROBOT, FUNCTION, requests,
            max_batch=max_batch,
            max_wait_s=0.0 if max_batch == 1 else 2e-3,
            shards=2, shard_policy="round_robin",
        )
    return out


def batching_speedup(stats: dict[int, dict]) -> float:
    """Modeled sustained-throughput gain of the largest batch vs batch-1."""
    best = max(k for k in stats if k > 1)
    return (stats[best]["modeled_throughput_rps"]
            / stats[1]["modeled_throughput_rps"])


def _curve_table(stats: dict[int, dict]):
    from repro.reporting import Table
    from repro.serve.bench import SERVE_TABLE_COLUMNS, serve_table_row

    table = Table(
        f"serve: {ROBOT} {FUNCTION.value} latency vs throughput "
        f"({REQUESTS} requests, 2 shards)",
        ["max_batch", *SERVE_TABLE_COLUMNS],
    )
    for max_batch, s in sorted(stats.items()):
        table.add_row(max_batch, *serve_table_row(s))
    return table


def test_serve_batching_speedup(once):
    """Dynamic batching sustains >= 5x batch-1 dispatch (iiwa FD)."""
    from conftest import record_table

    def _run():
        stats = sweep_batch_sizes()
        record_table(_curve_table(stats))
        speedup = batching_speedup(stats)
        record_table(
            f"== serve dynamic-batching speedup (iiwa FD) ==\n"
            f"modeled sustained throughput vs batch-1: {speedup:.1f}x "
            f"(floor {SPEEDUP_FLOOR:.0f}x)"
        )
        # Occupancy must actually rise with the knob, and the headline
        # speedup must clear the acceptance floor.
        occupancies = [s["mean_batch_occupancy"]
                       for _, s in sorted(stats.items())]
        assert occupancies == sorted(occupancies)
        assert speedup >= SPEEDUP_FLOOR

    once(_run)


def test_serve_shard_policies(once):
    """least_loaded matches round_robin capacity on a uniform load."""
    from conftest import record_table

    def _run():
        rows = {}
        for policy in ("round_robin", "least_loaded"):
            rows[policy] = run_serve_load(
                ROBOT, FUNCTION, 128, max_batch=32, max_wait_s=2e-3,
                shards=2, shard_policy=policy,
            )
        from repro.reporting import Table

        table = Table("serve: shard dispatch policies (128 requests)",
                      ["policy", "occupancy", "modeled thr (M/s)"])
        for policy, s in rows.items():
            table.add_row(policy, s["mean_batch_occupancy"],
                          s["modeled_throughput_rps"] / 1e6)
            assert s["completed"] == 128
        record_table(table)

    once(_run)


def main(argv: list[str]) -> int:
    from repro.serve.bench import format_serve_table

    quick = "--quick" in argv
    requests = 96 if quick else REQUESTS
    batch_sizes = (1, 64) if quick else BATCH_SWEEP
    stats = sweep_batch_sizes(requests, batch_sizes)
    print(f"bench_serve: {ROBOT} {FUNCTION.value}, {requests} requests")
    print(format_serve_table(
        [(f"max_batch={k}", s) for k, s in sorted(stats.items())]
    ))
    speedup = batching_speedup(stats)
    print(f"\ndynamic batching speedup vs batch-1: {speedup:.1f}x "
          f"(floor {SPEEDUP_FLOOR:.0f}x)")
    if "--json" in argv:
        from jsonout import write_bench_json

        rows = [
            {"robot": ROBOT, "function": FUNCTION, "max_batch": max_batch,
             "requests": requests, **s}
            for max_batch, s in sorted(stats.items())
        ]
        path = write_bench_json(
            "serve", rows,
            {"batching_speedup": speedup, "floor": SPEEDUP_FLOOR},
        )
        print(f"wrote {path}")
    if speedup < SPEEDUP_FLOOR:
        print("FAIL: speedup below floor", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
