"""Section VI-C: resource usage, power and energy.

Claims reproduced: the iiwa build occupies 62% DSP / 17% FF / 54% LUT of
the XCVU9P; power spans 6.2-36.8 W across functions with diFD at 31.2 W;
vs Robomorphic (9.6 W but 6.6x slower) Dadu-RBD uses 2.0x less energy per
task and is 13.2x better in energy-delay product.
"""

import pytest

from conftest import record_table
from repro.baselines import calibration
from repro.baselines.robomorphic import RobomorphicModel
from repro.dynamics.functions import RBDFunction
from repro.model.library import iiwa
from repro.reporting import Table


def test_resource_utilization_report(once, iiwa_acc, hyq_acc, atlas_acc):
    def _report():
        table = Table(
            "Section VI-C: resource utilization (XCVU9P)",
            ["robot", "lanes", "DSP", "FF", "LUT", "heavy_II"],
        )
        for acc in (iiwa_acc, hyq_acc, atlas_acc):
            report = acc.resources()
            table.add_row(
                acc.model.name, report.total_lanes,
                f"{report.dsp_utilization:.0%}", f"{report.ff_utilization:.0%}",
                f"{report.lut_utilization:.0%}", acc.config.heavy_ii_cycles,
            )
        table.add_note("paper (iiwa): 62% DSP, 17% FF, 54% LUT")
        record_table(table)

        report = iiwa_acc.resources()
        assert report.dsp_utilization == pytest.approx(
            calibration.RESOURCE_DSP_UTILIZATION, abs=0.03
        )
        assert report.ff_utilization == pytest.approx(
            calibration.RESOURCE_FF_UTILIZATION, abs=0.02
        )
        assert report.lut_utilization == pytest.approx(
            calibration.RESOURCE_LUT_UTILIZATION, abs=0.03
        )
        # Every auto-fit build must actually fit the chip.
        for acc in (hyq_acc, atlas_acc):
            assert acc.resources().fits()

    once(_report)

def test_power_report(once, iiwa_acc):
    def _report():
        table = Table("Section VI-C: power by function (iiwa)", ["func", "W"])
        powers = {}
        for f in RBDFunction:
            powers[f] = iiwa_acc.power_w(f)
            table.add_row(f.value, powers[f])
        low, high = calibration.POWER_RANGE_W
        table.add_note(f"paper range: {low}-{high} W, diFD {calibration.POWER_DIFD_W} W")
        record_table(table)

        assert min(powers.values()) == pytest.approx(low, abs=0.8)
        assert max(powers.values()) == pytest.approx(high, abs=1.5)
        assert powers[RBDFunction.DIFD] == pytest.approx(
            calibration.POWER_DIFD_W, abs=1.5
        )

    once(_report)

def test_energy_vs_robomorphic_report(once, iiwa_acc):
    def _report():
        robo = RobomorphicModel(iiwa())
        ours_thr = iiwa_acc.throughput_tasks_per_s(RBDFunction.DIFD, 256)
        robo_thr = robo.throughput_tasks_per_s(RBDFunction.DIFD, 256)
        ours_power = iiwa_acc.power_w(RBDFunction.DIFD)
        speed = ours_thr / robo_thr
        ours_energy = ours_power / ours_thr
        robo_energy = robo.power_w / robo_thr
        energy_ratio = robo_energy / ours_energy
        edp_ratio = (robo_energy / robo_thr) / (ours_energy / ours_thr)

        table = Table("Section VI-C: diFD energy vs Robomorphic",
                      ["metric", "measured", "paper"])
        table.add_row("our power (W)", ours_power, calibration.POWER_DIFD_W)
        table.add_row("robomorphic power (W)", robo.power_w,
                      calibration.ROBOMORPHIC_POWER_W)
        table.add_row("speed ratio", speed,
                      calibration.SPEED_RATIO_VS_ROBOMORPHIC)
        table.add_row("energy ratio (robo/ours)", energy_ratio,
                      calibration.ENERGY_RATIO_ROBOMORPHIC_OVER_OURS)
        table.add_row("EDP ratio", edp_ratio, calibration.EDP_RATIO_VS_ROBOMORPHIC)
        record_table(table)

        assert speed == pytest.approx(
            calibration.SPEED_RATIO_VS_ROBOMORPHIC, rel=0.1
        )
        assert energy_ratio == pytest.approx(
            calibration.ENERGY_RATIO_ROBOMORPHIC_OVER_OURS, rel=0.15
        )
        assert edp_ratio == pytest.approx(
            calibration.EDP_RATIO_VS_ROBOMORPHIC, rel=0.15
        )

    once(_report)

def test_resource_benchmark(benchmark, iiwa_acc):
    """pytest-benchmark target: resource accounting."""
    benchmark(lambda: iiwa_acc.resources().dsp_utilization)
