"""Packed-column plan sweeps and ragged cross-robot batching.

Two measurements on top of PR 7's ragged-batching work:

1. **Packed vs dense compiled sweeps** — the mass-matrix and derivative
   kernels in :mod:`repro.dynamics.plan` can run on packed
   ``(n, L, 6, |cols|)`` column slabs (gather/scatter over each level's
   precompiled path/subtree DOF-column union) instead of full ``nv``-wide
   slabs.  This times ``packing="always"`` against ``packing="never"``
   plans on the same compiled kernels for Minv and dFD, where the win
   grows with branch-induced sparsity (atlas is the high-DOF stressor).

2. **Coalesced vs fragmented mixed-robot serving** — a heterogeneous
   fleet (one queue per (robot, function)) fragments into per-robot
   batches unless ``BatchPolicy.coalesce`` folds compatible queues into
   one ragged batch per flush (:class:`repro.dynamics.RaggedBatch`).
   This drives an identical interleaved multi-robot load through both
   policies and records throughput, merged-flush stats, and a
   per-request result-identity check (coalescing must not change any
   answer, bit for bit).

Acceptance anchors: packed dFD >= 1.0x dense on atlas at the largest
batch (CI smoke floor on the 1-core runner; 1.5x is the target the
measured ~1.4x tracks), and the coalesced serve run must actually merge
queues (``flushed_merged >= 1``) while returning bitwise-identical
results.

Runs under pytest (with the usual summary table) or directly for CI
smoke::

    PYTHONPATH=src python benchmarks/bench_ragged.py --quick
"""

import sys
import time

import numpy as np

from repro.dynamics import BatchStates
from repro.dynamics.functions import RBDFunction
from repro.dynamics.plan import plan_for
from repro.model.library import load_robot
from repro.serve import BatchPolicy, DynamicsService

#: Packed-sweep sweep set: serial control + branched + high-DOF stressor.
ROBOTS = ("iiwa", "hyq", "atlas")
BATCH = 256
FUNCTIONS = (RBDFunction.MINV, RBDFunction.DFD)
#: CI smoke floor for packed-vs-dense dFD on atlas (1-core runner).
RAGGED_FLOOR = 1.0
#: The design target the measured speedup tracks.
RAGGED_TARGET = 1.5
#: Mixed-robot serve load: requests per robot, interleaved round-robin.
SERVE_ROBOTS = ("iiwa", "hyq", "quadruped_arm")
SERVE_REQUESTS_PER_ROBOT = 24


def _time_packed_pair(model, function, batch, reps=3):
    """Best-of-``reps`` wall seconds for (dense, packed) plan sweeps.

    The two plans' reps interleave so drift on a noisy shared host hits
    both sides alike; only the within-run ratio is trusted.
    """
    dense = plan_for(model, packing="never")
    packed = plan_for(model, packing="always")
    states = BatchStates.random(model, batch, seed=0)
    q, qd = states.q, states.qd
    tau = np.random.default_rng(1).normal(size=(batch, model.nv))
    if function is RBDFunction.MINV:
        calls = [(plan.minv_batch, (q,)) for plan in (dense, packed)]
    elif function is RBDFunction.DFD:
        calls = [(plan.dfd_batch, (q, qd, tau)) for plan in (dense, packed)]
    else:
        raise ValueError(f"unsupported function {function}")
    for fn, args in calls:
        fn(*args)                                   # warm-up both plans
    best = [float("inf"), float("inf")]
    for _ in range(reps):
        for side, (fn, args) in enumerate(calls):
            t0 = time.perf_counter()
            fn(*args)
            best[side] = min(best[side], time.perf_counter() - t0)
    return best[0], best[1]


def run_packed_bench(robots=ROBOTS, batch=BATCH,
                     functions=FUNCTIONS, reps=3) -> list[dict]:
    """Rows of {robot, function, batch, dense_s, packed_s, speedup}
    (speedup = dense / packed on the same compiled kernels)."""
    rows = []
    for robot in robots:
        model = load_robot(robot)
        for function in functions:
            dense_s, packed_s = _time_packed_pair(model, function, batch,
                                                  reps)
            rows.append({
                "robot": robot,
                "function": function,
                "batch": batch,
                "dense_s": dense_s,
                "packed_s": packed_s,
                "speedup": dense_s / packed_s,
            })
    return rows


def _run_serve_mode(coalesce: bool, requests_per_robot: int,
                    robots=SERVE_ROBOTS) -> tuple[dict, list]:
    """One mixed-robot FD load through the service; returns (stats row,
    per-request result values in submission order)."""
    rng = np.random.default_rng(7)
    inputs = []
    for k in range(requests_per_robot):
        for robot in robots:
            nv = load_robot(robot).nv
            inputs.append((robot, rng.standard_normal(nv),
                           rng.standard_normal(nv), rng.standard_normal(nv)))
    policy = BatchPolicy(max_batch=64, max_wait_s=2e-3, coalesce=coalesce)
    service = DynamicsService(policy=policy, n_shards=1,
                              warm_robots=list(robots))
    t0 = time.perf_counter()
    futures = [service.submit(robot, RBDFunction.FD, q, qd, u)
               for robot, q, qd, u in inputs]
    values = [np.asarray(f.result(timeout=60).value) for f in futures]
    wall_s = time.perf_counter() - t0
    stats = service.stats()
    service.close()
    n = len(inputs)
    return {
        "mode": "coalesced" if coalesce else "fragmented",
        "requests": n,
        "wall_s": wall_s,
        "throughput_rps": n / wall_s,
        "batches": sum(stats["engine_batches"].values()),
        "mean_batch_occupancy": stats["mean_batch_occupancy"],
        "flushed_merged": stats["flushed_merged"],
        "queues_per_flush": stats["queues_per_flush"],
        "ragged_batches": stats["ragged_batches"],
        "ragged_segments": stats["ragged_segments"],
    }, values


def run_serve_bench(requests_per_robot=SERVE_REQUESTS_PER_ROBOT):
    """Coalesced vs fragmented rows + the result-identity verdict."""
    fragmented, frag_values = _run_serve_mode(False, requests_per_robot)
    coalesced, coal_values = _run_serve_mode(True, requests_per_robot)
    identical = all(
        np.array_equal(a, b) for a, b in zip(frag_values, coal_values)
    )
    return [fragmented, coalesced], identical


def _packed_table(rows):
    from repro.reporting import Table

    table = Table(
        "ragged: packed vs dense compiled sweeps (speedup = dense/packed)",
        ["robot", "function", "batch", "dense (ms)", "packed (ms)",
         "speedup"],
    )
    for row in rows:
        table.add_row(row["robot"], row["function"].value, row["batch"],
                      row["dense_s"] * 1e3, row["packed_s"] * 1e3,
                      row["speedup"])
    return table


def _serve_table(rows):
    from repro.reporting import Table

    table = Table(
        "ragged: mixed-robot serve, coalesced vs fragmented",
        ["mode", "requests", "batches", "occupancy", "merged",
         "queues/flush", "throughput (r/s)"],
    )
    for row in rows:
        table.add_row(row["mode"], row["requests"], row["batches"],
                      row["mean_batch_occupancy"], row["flushed_merged"],
                      row["queues_per_flush"], row["throughput_rps"])
    return table


def _atlas_dfd_speedup(rows) -> float:
    for row in rows:
        if row["robot"] == "atlas" and row["function"] is RBDFunction.DFD:
            return row["speedup"]
    return float("nan")


def test_packed_sweep_speedup(once):
    """Packed >= dense on atlas dFD; serve coalescing merges losslessly."""
    from conftest import record_table

    def _run():
        rows = run_packed_bench()
        record_table(_packed_table(rows))
        atlas = _atlas_dfd_speedup(rows)
        record_table(
            f"== packed-column sweep speedup (atlas dFD, batch {BATCH}) ==\n"
            f"{atlas:.2f}x dense (floor {RAGGED_FLOOR:.1f}x, "
            f"target {RAGGED_TARGET:.1f}x)"
        )
        assert atlas >= RAGGED_FLOOR, atlas
        serve_rows, identical = run_serve_bench(requests_per_robot=8)
        record_table(_serve_table(serve_rows))
        coalesced = serve_rows[1]
        assert coalesced["flushed_merged"] >= 1, coalesced
        assert coalesced["ragged_batches"] >= 1, coalesced
        assert identical, "coalesced results diverged from fragmented"

    once(_run)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    reps = 2 if quick else 3
    requests_per_robot = 8 if quick else SERVE_REQUESTS_PER_ROBOT
    rows = run_packed_bench(reps=reps)
    print(f"bench_ragged: {'quick' if quick else 'full'} mode")
    print(_packed_table(rows).render())
    atlas = _atlas_dfd_speedup(rows)
    print(f"\npacked vs dense, atlas dFD at {BATCH}: {atlas:.2f}x "
          f"(floor {RAGGED_FLOOR:.1f}x, target {RAGGED_TARGET:.1f}x)")
    serve_rows, identical = run_serve_bench(requests_per_robot)
    print()
    print(_serve_table(serve_rows).render())
    print(f"\ncoalesced results identical to fragmented: {identical}")
    if "--json" in argv:
        from jsonout import write_bench_json

        json_rows = [
            {**row, "engine": "compiled", "backend": "numpy"}
            for row in rows
        ] + serve_rows
        path = write_bench_json(
            "ragged", json_rows,
            {"atlas_dfd_packed_speedup": atlas,
             "floor": RAGGED_FLOOR, "target": RAGGED_TARGET,
             "serve_results_identical": identical,
             "coalesced_merged_flushes": serve_rows[1]["flushed_merged"],
             "coalesced_queues_per_flush":
                 serve_rows[1]["queues_per_flush"]},
        )
        print(f"wrote {path}")
    if atlas < RAGGED_FLOOR:
        print("FAIL: packed sweeps lost to dense on atlas dFD",
              file=sys.stderr)
        return 1
    if not identical:
        print("FAIL: coalesced serve results diverged", file=sys.stderr)
        return 1
    if serve_rows[1]["flushed_merged"] < 1:
        print("FAIL: coalescing mode never merged a flush", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
